//! The workload build + analysis pipeline, in naive and indexed form.
//!
//! This module backs `bench_workload` and the `workload_scaling` test: it
//! reproduces everything one seven-policy experiment cell derives from the
//! dataflow graph *before any replay starts*, twice —
//!
//! * **naive** — the pre-index pipeline: every consumer re-derives the
//!   tensor→use-site adjacency with the retained reference
//!   ([`DnnGraph::tensor_use_sites`]: a fresh `HashSet` per kernel, a `Vec`
//!   per tensor) and deduplicates working sets with per-kernel `HashSet`s.
//!   That is one adjacency pass for the Figure-2 memory curves, one for the
//!   Figure-3/4 inactive periods, one per vitality analysis (the three G10
//!   scheduler variants plus FlashNeuron each analyze per cell), one per
//!   replay-engine construction (seven policies), plus the max-working-set
//!   scan — roughly eleven O(E) passes per cell.
//! * **indexed** — the current pipeline: the graph's shared
//!   [`g10_dnn::index::GraphIndex`] (built once at
//!   `GraphBuilder::finish`) feeds [`g10_dnn::stats`],
//!   [`g10_core::vitality::VitalityAnalysis`] and the engines' working-set
//!   arenas, so the same cell does no adjacency re-derivation at all.
//!
//! Both sides fold the analysis results into one FNV-1a fingerprint so
//! callers can assert the two families compute the same facts before
//! comparing wall time.  Both sides share the same (already optimised)
//! graph builder; since `finish` warms the index, the naive side inherits
//! ~2 % of build time for an index it never reads — noted here, and small
//! enough not to matter against the ≥5× assertions.

use g10_core::config::SystemConfig;
use g10_core::vitality::VitalityAnalysis;
use g10_dnn::graph::{DnnGraph, KernelId};
use g10_dnn::models::stress::StressGptConfig;
use g10_dnn::models::ModelKind;
use g10_dnn::trace::KernelTrace;
use g10_sim::Workload;
use std::collections::HashSet;

/// Number of vitality analyses one experiment cell performs (G10-GDS,
/// G10-Host, G10-Full and FlashNeuron each analyze the graph they plan on).
pub const VITALITY_PASSES_PER_CELL: usize = 4;

/// Number of replay engines one Figure-11 experiment cell constructs (the
/// Ideal run plus the six compared designs).
pub const ENGINE_PASSES_PER_CELL: usize = 7;

/// One workload cell to build and analyze.
pub struct WorkloadCase {
    /// Display label (`stress_10000`, `BERT_256`, …).
    pub label: String,
    kind: CaseKind,
}

enum CaseKind {
    Stress { target_kernels: usize },
    Model { model: ModelKind, batch: u64 },
}

impl WorkloadCase {
    /// The synthetic deep-GPT stress workload sized to ~`target_kernels`.
    pub fn stress(target_kernels: usize) -> Self {
        WorkloadCase {
            label: format!("stress_{target_kernels}"),
            kind: CaseKind::Stress { target_kernels },
        }
    }

    /// A paper model at the given batch size.
    pub fn model(model: ModelKind, batch: u64) -> Self {
        WorkloadCase {
            label: format!("{}_{batch}", model.name()),
            kind: CaseKind::Model { model, batch },
        }
    }
}

/// Builds the case's graph and profiled trace — the "build" half of the
/// pipeline (this includes the one-time `GraphIndex` construction that
/// `GraphBuilder::finish` performs).
pub fn build_workload(case: &WorkloadCase) -> (DnnGraph, KernelTrace) {
    let workload = match case.kind {
        CaseKind::Stress { target_kernels } => {
            Workload::stress(2, &StressGptConfig::with_target_kernels(target_kernels))
        }
        CaseKind::Model { model, batch } => Workload::new(model, batch),
    };
    (workload.graph, workload.trace)
}

/// 64-bit FNV-1a over a stream of `u64` words — the pinning hash shared by
/// this pipeline and the golden-plan / golden-report snapshot tests.
///
/// A thin alias over the workspace's one canonical implementation,
/// [`g10_sim::ReportFingerprint`]; kept so existing pipeline and store
/// call sites read unchanged.
pub struct Fingerprint(g10_sim::ReportFingerprint);

impl Fingerprint {
    /// Starts from the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint(g10_sim::ReportFingerprint::new())
    }

    /// Folds one word into the fingerprint, byte by byte.
    pub fn push(&mut self, word: u64) {
        self.0.push(word);
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> u64 {
        self.0.finish()
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// The facts every analysis pass contributes to the fingerprint, expressed
/// identically by both derivation families.
struct AnalysisFacts {
    peak_active: u64,
    peak_live: u64,
    period_count: u64,
    period_total_ns: u64,
    lifetime_count: u64,
    engine_arena_len: u64,
    engine_last_use_sum: u64,
    max_working_set: u64,
    working_set_exceeds_gpu: bool,
}

impl AnalysisFacts {
    fn fingerprint(&self, vitality_peaks: &[u64]) -> u64 {
        let mut fp = Fingerprint::new();
        fp.push(self.peak_active);
        fp.push(self.peak_live);
        fp.push(self.period_count);
        fp.push(self.period_total_ns);
        fp.push(self.lifetime_count);
        fp.push(self.engine_arena_len);
        fp.push(self.engine_last_use_sum);
        fp.push(self.max_working_set);
        fp.push(self.working_set_exceeds_gpu as u64);
        for &peak in vitality_peaks {
            fp.push(peak);
        }
        fp.finish()
    }
}

/// The indexed pipeline: everything reads the graph's shared `GraphIndex`
/// through the real public entry points.
pub fn indexed_analysis_fingerprint(graph: &DnnGraph, trace: &KernelTrace) -> u64 {
    let gpu_capacity = SystemConfig::table2().gpu_memory_bytes;

    // Figures 2-4: characterisation queries.
    let mc = g10_dnn::stats::memory_consumption(graph);
    let periods = g10_dnn::stats::inactive_periods(graph, trace);

    // One vitality analysis per planning policy.
    let mut vitality_peaks = Vec::with_capacity(VITALITY_PASSES_PER_CELL);
    let mut lifetime_count = 0u64;
    for _ in 0..VITALITY_PASSES_PER_CELL {
        let analysis = VitalityAnalysis::analyze(graph, trace);
        lifetime_count = analysis.lifetimes().len() as u64;
        vitality_peaks.push(analysis.peak_live_bytes());
    }

    // Per-engine preparation: lifetimes and the working-set arena, straight
    // from the index.
    let index = graph.index();
    let mut engine_arena_len = 0u64;
    let mut engine_last_use_sum = 0u64;
    let mut working_set_exceeds_gpu = false;
    for _ in 0..ENGINE_PASSES_PER_CELL {
        let (flat, _offsets) = index.working_sets();
        engine_arena_len = flat.len() as u64;
        let mut last_use_sum = 0u64;
        for info in graph.tensors() {
            if let Some(last) = index.last_use(info.id()) {
                last_use_sum += last.index() as u64;
            }
        }
        engine_last_use_sum = last_use_sum;
        working_set_exceeds_gpu = index.max_kernel_working_set_bytes() > gpu_capacity;
    }

    AnalysisFacts {
        peak_active: mc.peak_active_bytes(),
        peak_live: mc.peak_live_bytes(),
        period_count: periods.len() as u64,
        period_total_ns: periods.iter().map(|p| p.length.as_nanos()).sum(),
        lifetime_count,
        engine_arena_len,
        engine_last_use_sum,
        max_working_set: graph.max_kernel_working_set_bytes(),
        working_set_exceeds_gpu,
    }
    .fingerprint(&vitality_peaks)
}

/// The naive liveness sweep shared by the pre-index consumers.
fn naive_live_bytes(graph: &DnnGraph, uses: &[Vec<KernelId>]) -> Vec<u64> {
    let n_kernels = graph.num_kernels();
    let mut delta = vec![0i64; n_kernels + 1];
    for tensor in graph.tensors() {
        let sites = &uses[tensor.id().index()];
        if sites.is_empty() {
            continue;
        }
        let (birth, death) = if tensor.is_global() {
            (0usize, n_kernels - 1)
        } else {
            (sites[0].index(), sites[sites.len() - 1].index())
        };
        delta[birth] += tensor.bytes() as i64;
        delta[death + 1] -= tensor.bytes() as i64;
    }
    let mut live = Vec::with_capacity(n_kernels);
    let mut running = 0i64;
    for d in delta.iter().take(n_kernels) {
        running += d;
        live.push(running.max(0) as u64);
    }
    live
}

/// Counts a tensor's inactive periods and their total length under the
/// given trace — the shape both the stats module and the vitality analyzer
/// derive per tensor.
fn naive_periods(graph: &DnnGraph, trace: &KernelTrace, uses: &[Vec<KernelId>]) -> (u64, u64) {
    let total = trace.total_duration();
    let mut count = 0u64;
    let mut length_ns = 0u64;
    for tensor in graph.tensors() {
        let sites = &uses[tensor.id().index()];
        if sites.is_empty() {
            continue;
        }
        for window in sites.windows(2) {
            let (prev, next) = (window[0], window[1]);
            if next.index() <= prev.index() + 1 {
                continue;
            }
            let start = trace.end_time(prev);
            let end = trace.start_time(next);
            if end <= start {
                continue;
            }
            count += 1;
            length_ns += (end - start).as_nanos();
        }
        if tensor.is_global() {
            let last = sites[sites.len() - 1];
            let first = sites[0];
            let start = trace.end_time(last);
            let end = total + trace.start_time(first);
            if end > start {
                count += 1;
                length_ns += (end - start).as_nanos();
            }
        }
    }
    (count, length_ns)
}

/// The naive pipeline: every consumer re-derives the adjacency with the
/// retained `tensor_use_sites` reference, exactly as the pre-index
/// consumers did.
pub fn naive_analysis_fingerprint(graph: &DnnGraph, trace: &KernelTrace) -> u64 {
    let gpu_capacity = SystemConfig::table2().gpu_memory_bytes;
    let n_kernels = graph.num_kernels();

    // Figure 2 (memory_consumption): one adjacency pass + the sweeps.
    let (peak_active, peak_live) = {
        let uses = graph.tensor_use_sites();
        let mut active = vec![0u64; n_kernels];
        for tensor in graph.tensors() {
            for site in &uses[tensor.id().index()] {
                active[site.index()] += tensor.bytes();
            }
        }
        let live = naive_live_bytes(graph, &uses);
        (
            active.iter().copied().max().unwrap_or(0),
            live.iter().copied().max().unwrap_or(0),
        )
    };

    // Figures 3-4 (inactive_periods): another adjacency pass.
    let (period_count, period_total_ns) = {
        let uses = graph.tensor_use_sites();
        naive_periods(graph, trace, &uses)
    };

    // One vitality analysis per planning policy: adjacency + lifetimes +
    // periods + liveness, per pass.
    let mut vitality_peaks = Vec::with_capacity(VITALITY_PASSES_PER_CELL);
    let mut lifetime_count = 0u64;
    for _ in 0..VITALITY_PASSES_PER_CELL {
        let uses = graph.tensor_use_sites();
        let mut lifetimes = 0u64;
        let mut uses_clones: Vec<Vec<KernelId>> = Vec::with_capacity(graph.num_tensors());
        for tensor in graph.tensors() {
            let sites = &uses[tensor.id().index()];
            if sites.is_empty() {
                continue;
            }
            lifetimes += 1;
            uses_clones.push(sites.clone());
        }
        let _ = naive_periods(graph, trace, &uses);
        let live = naive_live_bytes(graph, &uses);
        lifetime_count = lifetimes;
        vitality_peaks.push(live.iter().copied().max().unwrap_or(0));
        std::hint::black_box(uses_clones);
    }

    // Per-engine preparation: adjacency for last-use lookups plus the
    // epoch-flattened working-set arena and the capacity check.
    let mut engine_arena_len = 0u64;
    let mut engine_last_use_sum = 0u64;
    let mut working_set_exceeds_gpu = false;
    for _ in 0..ENGINE_PASSES_PER_CELL {
        let uses = graph.tensor_use_sites();
        let mut last_use_sum = 0u64;
        for tensor in graph.tensors() {
            if let Some(last) = uses[tensor.id().index()].last() {
                last_use_sum += last.index() as u64;
            }
        }
        engine_last_use_sum = last_use_sum;

        let mut flat = Vec::new();
        let mut offsets = Vec::with_capacity(n_kernels + 1);
        offsets.push(0);
        let mut seen_epoch = vec![u32::MAX; graph.num_tensors()];
        for (k, kernel) in graph.kernels().iter().enumerate() {
            for t in kernel.tensors() {
                let stamp = &mut seen_epoch[t.index()];
                if *stamp != k as u32 {
                    *stamp = k as u32;
                    flat.push(t);
                }
            }
            offsets.push(flat.len());
        }
        engine_arena_len = flat.len() as u64;
        working_set_exceeds_gpu = offsets.windows(2).any(|w| {
            let ws: u64 = flat[w[0]..w[1]]
                .iter()
                .map(|&t| graph.tensor(t).bytes())
                .sum();
            ws > gpu_capacity
        });
    }

    // The max-working-set scan: a per-kernel `HashSet`, as
    // `DnnGraph::max_kernel_working_set_bytes` did before the index.
    let mut max_working_set = 0u64;
    for kernel in graph.kernels() {
        let mut seen = HashSet::new();
        let mut bytes = 0u64;
        for t in kernel.tensors() {
            if seen.insert(t) {
                bytes += graph.tensor(t).bytes();
            }
        }
        max_working_set = max_working_set.max(bytes);
    }

    AnalysisFacts {
        peak_active,
        peak_live,
        period_count,
        period_total_ns,
        lifetime_count,
        engine_arena_len,
        engine_last_use_sum,
        max_working_set,
        working_set_exceeds_gpu,
    }
    .fingerprint(&vitality_peaks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_and_indexed_pipelines_agree_on_a_small_cell() {
        let (graph, trace) = build_workload(&WorkloadCase::model(ModelKind::TinyCnn, 8));
        assert_eq!(
            indexed_analysis_fingerprint(&graph, &trace),
            naive_analysis_fingerprint(&graph, &trace)
        );
    }

    #[test]
    fn stress_case_builds_near_its_target() {
        let case = WorkloadCase::stress(700);
        let (graph, trace) = build_workload(&case);
        assert!(graph.num_kernels() >= 600 && graph.num_kernels() <= 760);
        assert_eq!(trace.len(), graph.num_kernels());
        assert_eq!(case.label, "stress_700");
    }
}
