//! Minimal JSON tree: emit and parse, no external dependencies.
//!
//! The build environment vendors only the crates the simulator itself
//! needs, so the perf-trajectory harness carries its own (deliberately
//! small) JSON support: enough to write `BENCH_*.json` snapshots and read
//! them back in `bench compare`.  Object key order is preserved, numbers
//! are `f64` (integers render without a fractional part), and the parser
//! accepts any RFC 8259 document — not just what the emitter produces — so
//! hand-edited baselines still load.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values render without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a dotted path (`"grid.wall_ms"`) through nested objects.
    pub fn path(&self, path: &str) -> Option<&Json> {
        path.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input, including
    /// trailing non-whitespace after the top-level value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the snapshot never produces them, but render
        // something parseable rather than corrupting the document.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through; the input
                // is a &str, so the sequence is known-valid.
                b => {
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = (start + len).min(self.bytes.len());
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Shorthand for building an object node.
pub fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_snapshot_shaped_document() {
        let doc = obj(vec![
            ("schema", Json::Num(1.0)),
            ("commit", Json::Str("abc123".to_string())),
            (
                "phases",
                Json::Arr(vec![obj(vec![
                    ("name", Json::Str("grid".to_string())),
                    ("wall_ms", Json::Num(3400.25)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.path("phases").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(parsed.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("commit").unwrap().as_str(), Some("abc123"));
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::Num(359.0).render(), "359\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn parses_foreign_documents() {
        let text = r#" { "a" : [ 1 , -2.5e1 , "x\u0041\n" , { } ] , "b" : false } "#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(
            parsed.path("a").unwrap().as_arr().unwrap()[1],
            Json::Num(-25.0)
        );
        assert_eq!(
            parsed.path("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("xA\n")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn dotted_path_walks_nested_objects() {
        let doc = obj(vec![("grid", obj(vec![("wall_ms", Json::Num(12.0))]))]);
        assert_eq!(doc.path("grid.wall_ms").unwrap().as_f64(), Some(12.0));
        assert!(doc.path("grid.missing").is_none());
    }
}
