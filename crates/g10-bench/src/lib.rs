//! Shared helpers for the G10 benchmark harness: experiment drivers used by
//! both the `experiments` binary and the criterion benches, plus simple
//! table / CSV output.

pub mod experiments;
pub mod output;
pub mod workload_pipeline;

pub use output::{write_csv, Table};
