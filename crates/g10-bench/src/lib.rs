//! Shared helpers for the G10 benchmark harness: experiment drivers used by
//! both the `experiments` binary and the criterion benches, the persistent
//! on-disk run-cache store, the perf-trajectory snapshot harness, and
//! simple table / CSV / JSON output.

pub mod experiments;
pub mod json;
pub mod output;
pub mod serve;
pub mod store;
pub mod trajectory;
pub mod workload_pipeline;

pub use output::{write_csv, Table};
pub use store::{RunKey, RunStore};
