//! Perf-trajectory snapshots: `BENCH_*.json` emission and comparison.
//!
//! `experiments bench snapshot` reruns the repo's three sub-linear
//! head-to-heads (planner, replay engine, workload pipeline — the pillars
//! of PRs 2–4) plus the full `experiments all` grid, and writes one
//! structured `BENCH_<n>.json` recording per-phase wall times, the
//! naive/indexed speedup ratios, and the grid's cell and cache counters.
//! `experiments bench compare` (wrapped by `scripts/bench-compare.sh`)
//! checks a fresh snapshot against the committed baseline and fails on
//! regression beyond a noise threshold, so "did the grid get slower?" is a
//! CI question, not an archaeology project.
//!
//! What is compared, and how strictly:
//!
//! * **Cell and CSV counts** — machine-independent; must match exactly.
//!   A dropped figure or a silently shrunken sweep fails loudly.
//! * **Naive/indexed speedup ratios** — mostly machine-independent; the
//!   fresh ratio must stay above `min_speedup_ratio` (default 0.4) of the
//!   baseline's.
//! * **Grid wall time** — machine-dependent; the fresh time must stay
//!   under `max_wall_ratio` (default 4.0) times the baseline's, a deliberately
//!   generous bound that still catches order-of-magnitude regressions.
//!   Per-phase times are recorded for trend browsing but not gated.

use crate::experiments::{self, run_cache_stats};
use crate::json::{obj, Json};
use crate::output::write_csv;
use crate::workload_pipeline::{
    build_workload, indexed_analysis_fingerprint, naive_analysis_fingerprint, WorkloadCase,
};
use g10_core::bandwidth::{BandwidthReservation, BandwidthTimeline};
use g10_core::config::SystemConfig;
use g10_core::eviction::{schedule_evictions_with, EvictionOptions};
use g10_core::naive::{NaiveBandwidthTimeline, NaiveMemoryTimeline};
use g10_core::prefetch::schedule_prefetches_with;
use g10_core::pressure::{MemoryTimeline, PressureTimeline};
use g10_core::vitality::VitalityAnalysis;
use g10_dnn::models::stress::StressGptConfig;
use g10_sim::{Experiment, PolicyKind, RuntimeOptions, VictimSelection, Workload};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema version of the `BENCH_*.json` document.
pub const SNAPSHOT_SCHEMA: u64 = 1;

/// Snapshot scale: `Default` is the per-push CI size; `Full` grows the
/// head-to-head stress workloads for the scheduled full-size run.  The
/// grid phase is the real, full `experiments all` grid in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// ~2k-kernel head-to-heads; what `ci.yml` compares every push.
    Default,
    /// ~4k-kernel head-to-heads for the scheduled full-size workflow.
    Full,
}

impl SnapshotMode {
    fn label(self) -> &'static str {
        match self {
            SnapshotMode::Default => "default",
            SnapshotMode::Full => "full",
        }
    }

    fn stress_kernels(self) -> usize {
        match self {
            SnapshotMode::Default => 2_000,
            SnapshotMode::Full => 4_000,
        }
    }
}

/// One timed phase of the snapshot.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Phase name (`"planner/naive"`, `"grid"`, …).
    pub name: String,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
}

/// The grid phase's outcome counters.
#[derive(Debug, Clone, Default)]
pub struct GridStats {
    /// Simulation cells actually replayed.
    pub cells_replayed: u64,
    /// Lookups served by the in-memory run cache (grid deduplication).
    pub memory_hits: u64,
    /// First touches served from the persistent on-disk store.
    pub disk_hits: u64,
    /// Grid wall time in milliseconds.
    pub wall_ms: f64,
    /// CSV files written.
    pub csv_files: u64,
}

/// One perf-trajectory snapshot, ready to serialise as `BENCH_<n>.json`.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Commit hash (from `GITHUB_SHA` or `git rev-parse HEAD`).
    pub commit: String,
    /// Snapshot mode label (`"default"` / `"full"`).
    pub mode: String,
    /// Every timed phase, in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Naive/indexed wall-time ratios per pillar.
    pub speedups: Vec<(String, f64)>,
    /// The `experiments all` grid counters.
    pub grid: GridStats,
}

impl BenchSnapshot {
    /// Serialises to the `BENCH_*.json` document.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("schema", Json::Num(SNAPSHOT_SCHEMA as f64)),
            ("commit", Json::Str(self.commit.clone())),
            ("mode", Json::Str(self.mode.clone())),
            (
                "grid",
                obj(vec![
                    ("cells_replayed", Json::Num(self.grid.cells_replayed as f64)),
                    ("memory_hits", Json::Num(self.grid.memory_hits as f64)),
                    ("disk_hits", Json::Num(self.grid.disk_hits as f64)),
                    ("csv_files", Json::Num(self.grid.csv_files as f64)),
                    ("wall_ms", Json::Num(round_ms(self.grid.wall_ms))),
                ]),
            ),
            (
                "speedups",
                Json::Obj(
                    self.speedups
                        .iter()
                        .map(|(name, ratio)| {
                            (name.clone(), Json::Num((ratio * 100.0).round() / 100.0))
                        })
                        .collect(),
                ),
            ),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("name", Json::Str(p.name.clone())),
                                ("wall_ms", Json::Num(round_ms(p.wall_ms))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn round_ms(ms: f64) -> f64 {
    (ms * 1000.0).round() / 1000.0
}

fn commit_hash() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed().as_secs_f64() * 1e3)
}

/// Min-of-3 wall time: the head-to-head ratios feed a CI gate, so each
/// side takes its best of three runs to shed scheduler noise (the same
/// min-of-N discipline the scaling tests use).
fn best_of_3_ms<T>(f: impl Fn() -> T) -> (T, f64) {
    let (mut value, mut best) = time_ms(&f);
    for _ in 0..2 {
        let (v, ms) = time_ms(&f);
        if ms < best {
            best = ms;
            value = v;
        }
    }
    (value, best)
}

/// The planner pipeline on one timeline family (the `bench_planner`
/// head-to-head, sized for the snapshot).
fn plan<P: PressureTimeline, B: BandwidthReservation>(
    analysis: &VitalityAnalysis,
    trace: &g10_dnn::trace::KernelTrace,
    config: &SystemConfig,
) -> usize {
    let mut schedule =
        schedule_evictions_with::<P, B>(analysis, trace, config, EvictionOptions::both());
    let prefetches = schedule_prefetches_with(
        analysis,
        trace,
        config,
        &schedule.decisions,
        &mut schedule.pressure,
    );
    schedule.decisions.len() + prefetches.len()
}

/// Collects one snapshot: the three naive-vs-indexed head-to-heads plus
/// the full grid, writing the grid's CSVs under `<out_dir>/results/`.
///
/// Every head-to-head asserts the two families still agree before timing
/// is trusted, so a snapshot can never trade correctness for speed
/// silently.
pub fn collect(mode: SnapshotMode, out_dir: &Path) -> BenchSnapshot {
    let mut phases = Vec::new();
    let mut speedups = Vec::new();
    let mut head_to_head = |pillar: &str, naive: f64, indexed: f64| {
        phases.push(PhaseTiming {
            name: format!("{pillar}/naive"),
            wall_ms: naive,
        });
        phases.push(PhaseTiming {
            name: format!("{pillar}/indexed"),
            wall_ms: indexed,
        });
        speedups.push((pillar.to_string(), naive / indexed.max(1e-9)));
    };

    // Shared stress workload for the planner and replay pillars, on a GPU
    // sized to half the peak live bytes (deep oversubscription) as in the
    // criterion benches.
    let stress_cfg = StressGptConfig::with_target_kernels(mode.stress_kernels());
    let workload = Workload::stress(2, &stress_cfg);
    let analysis = VitalityAnalysis::analyze(&workload.graph, &workload.trace);
    let config = SystemConfig::table2().with_gpu_memory(analysis.peak_live_bytes() / 2);

    // Pillar 1 (PR 2): the migration planner.
    let (indexed_plan, indexed_ms) = best_of_3_ms(|| {
        plan::<MemoryTimeline, BandwidthTimeline>(&analysis, &workload.trace, &config)
    });
    let (naive_plan, naive_ms) = best_of_3_ms(|| {
        plan::<NaiveMemoryTimeline, NaiveBandwidthTimeline>(&analysis, &workload.trace, &config)
    });
    assert_eq!(indexed_plan, naive_plan, "planner families diverged");
    head_to_head("planner", naive_ms, indexed_ms);

    // Pillar 2 (PR 3): the replay engine's victim selection.
    let replay = |selection: VictimSelection| {
        Experiment::new(&workload)
            .policy(PolicyKind::BaseUvm)
            .config(config)
            .options(RuntimeOptions {
                victim_selection: selection,
                ..RuntimeOptions::default()
            })
            .run()
            .expect("built-in policies resolve")
    };
    let (indexed_report, indexed_ms) = best_of_3_ms(|| replay(VictimSelection::Indexed));
    let (naive_report, naive_ms) = best_of_3_ms(|| replay(VictimSelection::NaiveScan));
    assert_eq!(indexed_report, naive_report, "replay families diverged");
    head_to_head("replay", naive_ms, indexed_ms);

    // Pillar 3 (PR 4): the workload build + analysis pipeline.
    let case = WorkloadCase::stress(mode.stress_kernels());
    let (graph, trace) = build_workload(&case);
    let (indexed_fp, indexed_ms) = best_of_3_ms(|| indexed_analysis_fingerprint(&graph, &trace));
    let (naive_fp, naive_ms) = best_of_3_ms(|| naive_analysis_fingerprint(&graph, &trace));
    assert_eq!(indexed_fp, naive_fp, "workload pipelines diverged");
    head_to_head("workload", naive_ms, indexed_ms);

    // The grid: the full `experiments all` driver set, CSVs included.
    let results_dir = out_dir.join("results");
    let before = run_cache_stats();
    let mut csv_files = 0u64;
    let ((), grid_ms) = time_ms(|| {
        for (name, driver) in experiments::figure_set() {
            let tables = driver();
            let single = tables.len() == 1;
            for (i, table) in tables.iter().enumerate() {
                let file = if single {
                    name.to_string()
                } else {
                    format!("{name}_{i}")
                };
                if let Err(err) = write_csv(table, &results_dir, &file) {
                    eprintln!("warning: could not write {file}.csv: {err}");
                } else {
                    csv_files += 1;
                }
            }
        }
    });
    let grid_delta = run_cache_stats().since(&before);
    phases.push(PhaseTiming {
        name: "grid".to_string(),
        wall_ms: grid_ms,
    });

    BenchSnapshot {
        commit: commit_hash(),
        mode: mode.label().to_string(),
        phases,
        speedups,
        grid: GridStats {
            cells_replayed: grid_delta.replayed,
            memory_hits: grid_delta.memory_hits,
            disk_hits: grid_delta.disk_hits,
            wall_ms: grid_ms,
            csv_files,
        },
    }
}

/// The next free `BENCH_<n>.json` index in `dir` (0 for a fresh directory).
pub fn next_snapshot_index(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let index = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            index.parse::<u64>().ok()
        })
        .max()
        .map_or(0, |max| max + 1)
}

/// Writes the snapshot as the next `BENCH_<n>.json` under `out_dir` and
/// returns the path.
///
/// # Errors
///
/// Returns the I/O error if the directory or file cannot be written.
pub fn write_snapshot(snapshot: &BenchSnapshot, out_dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("BENCH_{}.json", next_snapshot_index(out_dir)));
    std::fs::write(&path, snapshot.to_json().render())?;
    Ok(path)
}

/// Comparison thresholds; see the module docs for what each gate means.
#[derive(Debug, Clone, Copy)]
pub struct CompareOptions {
    /// Minimum fresh/baseline ratio each naive-vs-indexed speedup must keep.
    pub min_speedup_ratio: f64,
    /// Maximum fresh/baseline ratio the grid wall time may reach.
    pub max_wall_ratio: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            min_speedup_ratio: 0.4,
            max_wall_ratio: 4.0,
        }
    }
}

/// The verdict of one snapshot comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Human-readable lines for checks that passed.
    pub passes: Vec<String>,
    /// Human-readable lines for checks that failed (empty = regression-free).
    pub failures: Vec<String>,
}

impl CompareOutcome {
    /// `true` if no check failed.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn num_at(doc: &Json, path: &str, failures: &mut Vec<String>, which: &str) -> Option<f64> {
    let value = doc.path(path).and_then(Json::as_f64);
    if value.is_none() {
        failures.push(format!(
            "{which} snapshot is missing numeric field '{path}'"
        ));
    }
    value
}

/// Compares a fresh snapshot against the committed baseline.
pub fn compare(baseline: &Json, fresh: &Json, opts: &CompareOptions) -> CompareOutcome {
    let mut outcome = CompareOutcome::default();

    // Structural gates: schema and mode must match exactly, else the
    // numbers are not comparable at all.
    for (field, label) in [("schema", "schema version"), ("mode", "snapshot mode")] {
        let base = baseline.get(field);
        let fresh_value = fresh.get(field);
        if base.is_none() || fresh_value.is_none() || base != fresh_value {
            outcome.failures.push(format!(
                "{label} mismatch: baseline {base:?} vs fresh {fresh_value:?}"
            ));
        }
    }

    // Count gates: exact equality.
    for path in ["grid.cells_replayed", "grid.csv_files"] {
        let (base, fresh_value) = (
            num_at(baseline, path, &mut outcome.failures, "baseline"),
            num_at(fresh, path, &mut outcome.failures, "fresh"),
        );
        if let (Some(base), Some(fresh_value)) = (base, fresh_value) {
            if base == fresh_value {
                outcome
                    .passes
                    .push(format!("{path}: {fresh_value} (unchanged)"));
            } else {
                outcome.failures.push(format!(
                    "{path} changed: baseline {base} vs fresh {fresh_value} \
                     (a dropped figure or shrunken sweep?)"
                ));
            }
        }
    }

    // Speedup gates: every pillar in the baseline must still be present
    // and within the noise threshold.
    if let Some(entries) = baseline.get("speedups").and_then(Json::as_obj) {
        for (pillar, base_value) in entries {
            let Some(base) = base_value.as_f64() else {
                outcome
                    .failures
                    .push(format!("baseline speedup '{pillar}' is not a number"));
                continue;
            };
            let path = format!("speedups.{pillar}");
            let Some(fresh_value) = fresh.path(&path).and_then(Json::as_f64) else {
                outcome
                    .failures
                    .push(format!("fresh snapshot is missing speedup '{pillar}'"));
                continue;
            };
            let floor = base * opts.min_speedup_ratio;
            if fresh_value >= floor {
                outcome.passes.push(format!(
                    "{path}: {fresh_value:.2}x (baseline {base:.2}x, floor {floor:.2}x)"
                ));
            } else {
                outcome.failures.push(format!(
                    "{path} regressed: {fresh_value:.2}x vs baseline {base:.2}x \
                     (floor {floor:.2}x at ratio {})",
                    opts.min_speedup_ratio
                ));
            }
        }
    } else {
        outcome
            .failures
            .push("baseline snapshot has no 'speedups' object".to_string());
    }

    // Wall-time gate: generous, machine-variance-tolerant ceiling.
    let (base, fresh_value) = (
        num_at(baseline, "grid.wall_ms", &mut outcome.failures, "baseline"),
        num_at(fresh, "grid.wall_ms", &mut outcome.failures, "fresh"),
    );
    if let (Some(base), Some(fresh_value)) = (base, fresh_value) {
        let ceiling = base * opts.max_wall_ratio;
        if fresh_value <= ceiling {
            outcome.passes.push(format!(
                "grid.wall_ms: {fresh_value:.0} (baseline {base:.0}, ceiling {ceiling:.0})"
            ));
        } else {
            outcome.failures.push(format!(
                "grid wall time regressed: {fresh_value:.0} ms vs baseline {base:.0} ms \
                 (ceiling {ceiling:.0} ms at ratio {})",
                opts.max_wall_ratio
            ));
        }
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_json(cells: u64, csvs: u64, planner: f64, wall: f64) -> Json {
        obj(vec![
            ("schema", Json::Num(SNAPSHOT_SCHEMA as f64)),
            ("commit", Json::Str("test".to_string())),
            ("mode", Json::Str("default".to_string())),
            (
                "grid",
                obj(vec![
                    ("cells_replayed", Json::Num(cells as f64)),
                    ("memory_hits", Json::Num(56.0)),
                    ("disk_hits", Json::Num(0.0)),
                    ("csv_files", Json::Num(csvs as f64)),
                    ("wall_ms", Json::Num(wall)),
                ]),
            ),
            (
                "speedups",
                obj(vec![
                    ("planner", Json::Num(planner)),
                    ("replay", Json::Num(5.0)),
                    ("workload", Json::Num(5.0)),
                ]),
            ),
            ("phases", Json::Arr(vec![])),
        ])
    }

    #[test]
    fn identical_snapshots_compare_clean() {
        let base = snapshot_json(359, 24, 20.0, 3000.0);
        let outcome = compare(&base, &base, &CompareOptions::default());
        assert!(outcome.is_ok(), "failures: {:?}", outcome.failures);
        assert!(!outcome.passes.is_empty());
    }

    #[test]
    fn noise_within_thresholds_passes() {
        let base = snapshot_json(359, 24, 20.0, 3000.0);
        let fresh = snapshot_json(359, 24, 9.0, 11_000.0);
        assert!(compare(&base, &fresh, &CompareOptions::default()).is_ok());
    }

    #[test]
    fn regressions_fail_each_gate() {
        let base = snapshot_json(359, 24, 20.0, 3000.0);
        for (fresh, expect) in [
            (snapshot_json(358, 24, 20.0, 3000.0), "cells_replayed"),
            (snapshot_json(359, 23, 20.0, 3000.0), "csv_files"),
            (snapshot_json(359, 24, 2.0, 3000.0), "speedups.planner"),
            (snapshot_json(359, 24, 20.0, 50_000.0), "wall time"),
        ] {
            let outcome = compare(&base, &fresh, &CompareOptions::default());
            assert!(
                outcome.failures.iter().any(|f| f.contains(expect)),
                "expected a '{expect}' failure, got {:?}",
                outcome.failures
            );
        }
    }

    #[test]
    fn mode_and_schema_mismatches_fail() {
        let base = snapshot_json(359, 24, 20.0, 3000.0);
        let mut fresh = snapshot_json(359, 24, 20.0, 3000.0);
        if let Json::Obj(entries) = &mut fresh {
            entries[2].1 = Json::Str("full".to_string());
        }
        let outcome = compare(&base, &fresh, &CompareOptions::default());
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("snapshot mode mismatch")));
    }

    #[test]
    fn missing_fields_are_reported_not_panicked() {
        let base = snapshot_json(359, 24, 20.0, 3000.0);
        let outcome = compare(&base, &Json::Obj(vec![]), &CompareOptions::default());
        assert!(!outcome.is_ok());
    }

    #[test]
    fn snapshot_indices_increment_past_the_maximum() {
        let dir = std::env::temp_dir().join("g10_bench_trajectory_index_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_snapshot_index(&dir), 0);
        std::fs::write(dir.join("BENCH_0.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_7.json"), "{}").unwrap();
        std::fs::write(dir.join("not-a-snapshot.json"), "{}").unwrap();
        assert_eq!(next_snapshot_index(&dir), 8);
    }
}
