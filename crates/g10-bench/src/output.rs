//! Minimal table formatting and CSV output for the experiment harness.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also be written out as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table to `<dir>/<name>.csv`, creating the directory if needed.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = fs::File::create(path)?;
    file.write_all(table.to_csv().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv_contain_all_cells() {
        let mut t = Table::new("demo", &["a", "bb", "ccc"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["x".into(), "y".into(), "z".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("ccc"));
        assert!(rendered.contains('z'));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,bb,ccc"));
    }

    #[test]
    fn csv_writing_creates_the_file() {
        let mut t = Table::new("demo", &["k", "v"]);
        t.push_row(vec!["x".into(), "1".into()]);
        let dir = std::env::temp_dir().join("g10_bench_output_test");
        write_csv(&t, &dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(content.contains("x,1"));
    }
}
