//! Regenerates every table and figure of the paper's evaluation, and runs
//! free-form policy comparisons.
//!
//! ```text
//! experiments <command> [--out results]
//!
//! commands:
//!   table1 table2 fig2 fig3 fig4 fig11 fig12 fig13 fig14 fig15 fig16
//!   fig17 fig18 fig19 lifetime all
//!   run --model <name> [--batch N] [--policy <name>[,<name>...]]
//!       [--gpu-mib N]
//! ```
//!
//! Each figure command prints the rows the paper reports and writes a CSV
//! file into the output directory (default `results/`).  The `all` run
//! additionally prints per-figure wall time and the simulation-cell dedup
//! count (cells repeated across figures are replayed once and served from
//! the run cache), so grid speedups stay visible run to run.
//!
//! The `run` command is not tied to any figure: it replays one (model,
//! batch) cell under any comma-separated list of policy names — the seven
//! built-ins or anything registered through
//! [`g10_sim::register_policy`] — so new designs are reachable from the
//! CLI without touching this binary.  `--batch` defaults to the model's
//! evaluation batch and `--gpu-mib` overrides the Table 2 GPU capacity.

use g10_bench::experiments::{self, run_cache_stats, EndToEndRuns};
use g10_bench::output::{write_csv, Table};
use g10_core::config::SystemConfig;
use g10_dnn::models::ModelKind;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn emit(table: &Table, out_dir: &Path, name: &str) {
    println!("{}", table.render());
    if let Err(err) = write_csv(table, out_dir, name) {
        eprintln!("warning: could not write {name}.csv: {err}");
    }
}

fn emit_all(tables: &[Table], out_dir: &Path, prefix: &str) {
    for (i, table) in tables.iter().enumerate() {
        emit(table, out_dir, &format!("{prefix}_{i}"));
    }
}

/// Runs one figure driver, printing its wall time (the `all` command uses
/// this so per-figure grid speedups are visible run to run).
fn figure(label: &str, f: impl FnOnce()) {
    let started = Instant::now();
    f();
    println!(
        "[experiments] {label} took {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

/// Flags consumed by the free-form `run` command.
#[derive(Default)]
struct RunFlags {
    model: Option<String>,
    batch: Option<u64>,
    policies: Option<String>,
    gpu_mib: Option<u64>,
}

/// The `run` command: one (model, batch) cell under any list of policy
/// names, resolved through the open policy registry.
fn custom_run(flags: &RunFlags, out_dir: &Path) -> Result<(), String> {
    let model: ModelKind = flags
        .model
        .as_deref()
        .ok_or_else(|| "run requires --model <name> (try --help)".to_string())?
        .parse()?;
    let batch = flags.batch.unwrap_or_else(|| model.eval_batch());
    let policies: Vec<String> = flags
        .policies
        .as_deref()
        .unwrap_or("g10")
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect();
    if policies.is_empty() {
        return Err("--policy needs at least one policy name".to_string());
    }
    let mut config = SystemConfig::table2();
    if let Some(gpu_mib) = flags.gpu_mib {
        config = config.with_gpu_memory(gpu_mib << 20);
    }
    let table =
        experiments::custom_run(model, batch, &policies, &config).map_err(|err| err.to_string())?;
    emit(&table, out_dir, &format!("run_{}_{batch}", model.name()));
    Ok(())
}

fn run(command: &str, flags: &RunFlags, out_dir: &Path) -> Result<(), String> {
    match command {
        "run" => custom_run(flags, out_dir)?,
        "table1" => emit(&experiments::table1(), out_dir, "table1"),
        "table2" => emit(&experiments::table2(), out_dir, "table2"),
        "fig2" => emit_all(&experiments::fig2(), out_dir, "fig2"),
        "fig3" => emit(&experiments::fig3(), out_dir, "fig3"),
        "fig4" => emit_all(&experiments::fig4(), out_dir, "fig4"),
        "fig11" | "fig12" | "fig13" | "fig14" | "lifetime" => {
            let data = EndToEndRuns::collect();
            match command {
                "fig11" => emit(&experiments::fig11(&data), out_dir, "fig11"),
                "fig12" => emit(&experiments::fig12(&data), out_dir, "fig12"),
                "fig13" => emit(&experiments::fig13(&data), out_dir, "fig13"),
                "fig14" => emit(&experiments::fig14(&data), out_dir, "fig14"),
                _ => emit(&experiments::lifetime(&data), out_dir, "lifetime"),
            }
        }
        "fig15" => emit(&experiments::fig15(), out_dir, "fig15"),
        "fig16" => emit(&experiments::fig16(), out_dir, "fig16"),
        "fig17" => emit(&experiments::fig17(), out_dir, "fig17"),
        "fig18" => emit(&experiments::fig18(), out_dir, "fig18"),
        "fig19" => emit(&experiments::fig19(), out_dir, "fig19"),
        "all" => {
            figure("table1", || emit(&experiments::table1(), out_dir, "table1"));
            figure("table2", || emit(&experiments::table2(), out_dir, "table2"));
            figure("fig2", || emit_all(&experiments::fig2(), out_dir, "fig2"));
            figure("fig3", || emit(&experiments::fig3(), out_dir, "fig3"));
            figure("fig4", || emit_all(&experiments::fig4(), out_dir, "fig4"));
            let data = {
                let started = Instant::now();
                let data = EndToEndRuns::collect();
                println!(
                    "[experiments] end-to-end runs took {:.1}s",
                    started.elapsed().as_secs_f64()
                );
                data
            };
            figure("fig11", || {
                emit(&experiments::fig11(&data), out_dir, "fig11")
            });
            figure("fig12", || {
                emit(&experiments::fig12(&data), out_dir, "fig12")
            });
            figure("fig13", || {
                emit(&experiments::fig13(&data), out_dir, "fig13")
            });
            figure("fig14", || {
                emit(&experiments::fig14(&data), out_dir, "fig14")
            });
            figure("lifetime", || {
                emit(&experiments::lifetime(&data), out_dir, "lifetime")
            });
            figure("fig15", || emit(&experiments::fig15(), out_dir, "fig15"));
            figure("fig16", || emit(&experiments::fig16(), out_dir, "fig16"));
            figure("fig17", || emit(&experiments::fig17(), out_dir, "fig17"));
            figure("fig18", || emit(&experiments::fig18(), out_dir, "fig18"));
            figure("fig19", || emit(&experiments::fig19(), out_dir, "fig19"));
            let (replayed, cached) = run_cache_stats();
            println!(
                "[experiments] simulation cells: {replayed} replayed, \
                 {cached} deduplicated (served from the run cache)"
            );
        }
        other => return Err(format!("unknown command: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut out_dir = PathBuf::from("results");
    let mut flags = RunFlags::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--model" => match iter.next() {
                Some(model) => flags.model = Some(model.clone()),
                None => {
                    eprintln!("error: --model needs a model name argument");
                    return ExitCode::FAILURE;
                }
            },
            "--batch" => match iter.next().map(|b| b.parse::<u64>()) {
                Some(Ok(batch)) => flags.batch = Some(batch),
                _ => {
                    eprintln!("error: --batch needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match iter.next() {
                Some(policies) => flags.policies = Some(policies.clone()),
                None => {
                    eprintln!("error: --policy needs a policy-name argument");
                    return ExitCode::FAILURE;
                }
            },
            "--gpu-mib" => match iter.next().map(|b| b.parse::<u64>()) {
                Some(Ok(mib)) => flags.gpu_mib = Some(mib),
                _ => {
                    eprintln!("error: --gpu-mib needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: experiments <table1|table2|fig2|fig3|fig4|fig11|fig12|fig13|fig14|\
                     fig15|fig16|fig17|fig18|fig19|lifetime|all> [--out DIR]\n\
                     \n\
                     free-form runs over the open policy registry:\n\
                     \x20      experiments run --model <name> [--batch N] [--gpu-mib N]\n\
                     \x20                  [--policy <name>[,<name>...]]\n\
                     \n\
                     --policy accepts the built-in designs (ideal, base-uvm, deepum+,\n\
                     flashneuron, g10-gds, g10-host, g10) and any policy registered via\n\
                     g10_sim::register_policy; --batch defaults to the model's evaluation\n\
                     batch size"
                );
                return ExitCode::SUCCESS;
            }
            other => command = Some(other.to_string()),
        }
    }
    let Some(command) = command else {
        eprintln!("error: no command given (try --help)");
        return ExitCode::FAILURE;
    };
    let started = std::time::Instant::now();
    match run(&command, &flags, &out_dir) {
        Ok(()) => {
            println!(
                "[experiments] {command} finished in {:.1}s; CSV written to {}",
                started.elapsed().as_secs_f64(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
