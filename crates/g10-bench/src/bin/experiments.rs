//! Regenerates every table and figure of the paper's evaluation, runs
//! free-form policy comparisons, and drives the perf-trajectory harness.
//!
//! ```text
//! experiments <command> [--out results] [--cache-dir DIR | --no-cache]
//!
//! commands:
//!   table1 table2 fig2 fig3 fig4 fig11 fig12 fig13 fig14 fig15 fig16
//!   fig17 fig18 fig19 lifetime all
//!   run --model <name> [--batch N] [--policy <name>[,<name>...]]
//!       [--gpu-mib N]
//!   multi [--tenants N] [--stress] [--policy <name>[,<name>...]]
//!       [--gpu-mib N]
//!   bench snapshot [--full]
//!   bench compare <baseline.json> <fresh.json>
//!       [--min-speedup-ratio X] [--max-wall-ratio X]
//! ```
//!
//! Each figure command prints the rows the paper reports and writes a CSV
//! file into the output directory (default `results/`).  The `all` run
//! additionally prints per-figure wall time; every command that replays
//! simulation cells prints the three-way run-cache tally (replayed /
//! memory hits / disk hits) on exit.
//!
//! With `--cache-dir DIR` (or `G10_CACHE_DIR=DIR` in the environment),
//! replayed cells are persisted to a content-addressed on-disk store and
//! later invocations — including fresh processes — serve them as *disk
//! hits* with byte-identical CSVs.  `--no-cache` disables the store even
//! when the environment variable is set.
//!
//! The `run` command is not tied to any figure: it replays one (model,
//! batch) cell under any comma-separated list of policy names — the seven
//! built-ins or anything registered through
//! [`g10_sim::register_policy`] — so new designs are reachable from the
//! CLI without touching this binary.  `--batch` defaults to the model's
//! evaluation batch and `--gpu-mib` overrides the Table 2 GPU capacity.
//!
//! The `multi` command replays a tenant mix — `--tenants N` concurrent
//! jobs with staggered arrivals, priorities and GPU quotas sharing one
//! simulated device — under each named policy, and writes two CSVs:
//! `multi_throughput.csv` (aggregate samples/s and worst slowdown per
//! policy) and `multi_slowdown.csv` (per-job slowdown vs the solo
//! baseline).  `--stress` swaps the tiny-model mix for synthetic GPT
//! training jobs.
//!
//! `bench snapshot` emits a `BENCH_<n>.json` perf-trajectory snapshot
//! (head-to-head pillar timings + the full grid) under the output
//! directory, and `bench compare` gates a fresh snapshot against a
//! committed baseline — see `scripts/bench-compare.sh` and the README's
//! bench-trajectory section.

use g10_bench::experiments::{self, run_cache_stats, set_run_store, EndToEndRuns};
use g10_bench::json::Json;
use g10_bench::output::{write_csv, Table};
use g10_bench::serve::{self, JobRequest, RunRequest, ServeOptions};
use g10_bench::store::RunStore;
use g10_bench::trajectory::{self, CompareOptions, SnapshotMode};
use g10_core::config::SystemConfig;
use g10_dnn::models::ModelKind;
use g10_sim::{CancelToken, FaultPlan, JobSpec, OnPolicyFault, PolicySpec, RuntimeOptions};
use g10_time::Nanos;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn emit(table: &Table, out_dir: &Path, name: &str) {
    println!("{}", table.render());
    if let Err(err) = write_csv(table, out_dir, name) {
        eprintln!("warning: could not write {name}.csv: {err}");
    }
}

fn emit_all(tables: &[Table], out_dir: &Path, prefix: &str) {
    for (i, table) in tables.iter().enumerate() {
        emit(table, out_dir, &format!("{prefix}_{i}"));
    }
}

/// Runs one figure driver, printing its wall time (the `all` command uses
/// this so per-figure grid speedups are visible run to run).
fn figure(label: &str, f: impl FnOnce()) {
    let started = Instant::now();
    f();
    println!(
        "[experiments] {label} took {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

/// Flags consumed by the subcommands.
#[derive(Default)]
struct Flags {
    model: Option<String>,
    batch: Option<u64>,
    policies: Option<String>,
    gpu_mib: Option<u64>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    full: bool,
    min_speedup_ratio: Option<f64>,
    max_wall_ratio: Option<f64>,
    /// Deterministic fault injection (`--inject-fault <step>:<kind>`):
    /// exercises the typed fault and degradation paths from the CLI.
    inject_fault: Option<FaultPlan>,
    /// Fault handling (`--on-fault <fail|policy-name>`): fail the run
    /// (default) or quarantine the faulting policy and re-run the cell
    /// under the named fallback design.
    on_fault: Option<String>,
    /// Per-run deadline in milliseconds (`--deadline-ms`): expiry yields
    /// the same typed `deadline exceeded` error the serve daemon reports.
    deadline_ms: Option<u64>,
    /// Daemon address, `serve --addr` (bind) / `submit --addr` (connect).
    addr: Option<String>,
    /// `serve --workers`: worker-pool size.
    workers: Option<usize>,
    /// `serve --queue-depth`: admission cap in queued requests.
    queue_depth: Option<usize>,
    /// `serve --queue-mib`: admission cap in estimated queued MiB.
    queue_mib: Option<u64>,
    /// `serve --drain-ms`: graceful-shutdown grace period.
    drain_ms: Option<u64>,
    /// `cache gc --max-mib`: target store size.
    max_mib: Option<u64>,
    /// `multi --tenants`: number of concurrent jobs in the mix.
    tenants: Option<usize>,
    /// `submit --jobs`: comma-separated multi-job mix, each job written
    /// `model[:batch[:priority[:quota_mib[:arrival_us]]]]`.
    jobs: Option<String>,
    /// `multi --stress`: synthetic GPT training jobs instead of the tiny
    /// default mix.
    stress_mix: bool,
    /// `submit --health`: probe `GET /healthz` instead of running.
    health: bool,
    /// `submit --stats`: fetch `GET /stats` instead of running.
    stats: bool,
    /// `submit --shutdown`: post `POST /shutdown` instead of running.
    shutdown: bool,
}

/// The `run` command: one (model, batch) cell under any list of policy
/// names, resolved through the open policy registry.
fn custom_run(flags: &Flags, out_dir: &Path) -> Result<(), String> {
    let model: ModelKind = flags
        .model
        .as_deref()
        .ok_or_else(|| "run requires --model <name> (try --help)".to_string())?
        .parse()?;
    let batch = flags.batch.unwrap_or_else(|| model.eval_batch());
    let policies: Vec<String> = flags
        .policies
        .as_deref()
        .unwrap_or("g10")
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect();
    if policies.is_empty() {
        return Err("--policy needs at least one policy name".to_string());
    }
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    let mut config = SystemConfig::table2();
    if let Some(gpu_mib) = flags.gpu_mib {
        // `mib << 20` must not overflow the byte count.
        if gpu_mib == 0 || gpu_mib > (u64::MAX >> 20) {
            return Err(format!(
                "--gpu-mib must be between 1 and {} MiB",
                u64::MAX >> 20
            ));
        }
        config = config.with_gpu_memory(gpu_mib << 20);
    }
    let mut options = RuntimeOptions::default();
    if let Some(plan) = flags.inject_fault {
        options.fault_plan = Some(plan);
    }
    if let Some(ms) = flags.deadline_ms {
        // Same plumbing as the daemon: a wall-clock token threaded into the
        // engine's step loop, so expiry is the identical typed error.
        options.cancel = Some(CancelToken::with_deadline(Duration::from_millis(ms)));
    }
    match flags.on_fault.as_deref() {
        None | Some("fail") => {}
        Some(fallback) => {
            let spec: PolicySpec = fallback
                .parse()
                .map_err(|err| format!("--on-fault: {err}"))?;
            options.on_policy_fault = OnPolicyFault::FallbackTo(spec);
        }
    }
    let table = experiments::custom_run_with_options(model, batch, &policies, &config, &options)
        .map_err(|err| err.to_string())?;
    emit(&table, out_dir, &format!("run_{}_{batch}", model.name()));
    Ok(())
}

/// The `multi` command: a tenant mix replayed under each named policy,
/// reduced to throughput and per-job-slowdown CSVs.
fn multi_cmd(flags: &Flags, out_dir: &Path) -> Result<(), String> {
    let tenants = flags.tenants.unwrap_or(3);
    if tenants == 0 {
        return Err("--tenants must be at least 1".to_string());
    }
    let policies: Vec<String> = flags
        .policies
        .as_deref()
        .unwrap_or("base-uvm,g10,tensile")
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect();
    if policies.is_empty() {
        return Err("--policy needs at least one policy name".to_string());
    }
    let mut config = SystemConfig::table2();
    if let Some(gpu_mib) = flags.gpu_mib {
        if gpu_mib == 0 || gpu_mib > (u64::MAX >> 20) {
            return Err(format!(
                "--gpu-mib must be between 1 and {} MiB",
                u64::MAX >> 20
            ));
        }
        config = config.with_gpu_memory(gpu_mib << 20);
    }
    let jobs = if let Some(entries) = &flags.jobs {
        if flags.stress_mix || flags.tenants.is_some() {
            return Err("--jobs is an explicit mix; drop --tenants/--stress".to_string());
        }
        let requests = entries
            .split(',')
            .map(str::trim)
            .filter(|entry| !entry.is_empty())
            .map(parse_job)
            .collect::<Result<Vec<_>, _>>()?;
        if requests.is_empty() {
            return Err("--jobs needs at least one model[:batch:...] entry".to_string());
        }
        requests
            .iter()
            .enumerate()
            .map(|(i, job)| {
                let mut spec = JobSpec::new(
                    format!("job-{i}-{}", job.model.name()),
                    experiments::workload(job.model, job.batch),
                )
                .priority(job.priority)
                .arrival(Nanos::from_micros(job.arrival_us));
                if let Some(mib) = job.quota_mib {
                    spec = spec.quota_bytes(mib << 20);
                }
                spec
            })
            .collect()
    } else if flags.stress_mix {
        experiments::stress_tenant_mix(tenants)
    } else {
        experiments::default_tenant_mix(tenants)
    };
    let tables = experiments::multi_tenant_tables(&jobs, &policies, &config)
        .map_err(|err| err.to_string())?;
    emit(&tables[0], out_dir, "multi_throughput");
    emit(&tables[1], out_dir, "multi_slowdown");
    Ok(())
}

/// The `serve` command: run the experiment daemon until shutdown.
fn serve_cmd(flags: &Flags) -> Result<(), String> {
    let mut options = ServeOptions::default();
    if let Some(addr) = &flags.addr {
        options.addr = addr.clone();
    }
    if let Some(workers) = flags.workers {
        options.workers = workers;
    }
    if let Some(depth) = flags.queue_depth {
        options.queue_depth = depth;
    }
    if let Some(mib) = flags.queue_mib {
        if mib == 0 || mib > (u64::MAX >> 20) {
            return Err("--queue-mib out of range".to_string());
        }
        options.queue_bytes = mib << 20;
    }
    if let Some(ms) = flags.drain_ms {
        options.drain_ms = ms;
    }
    serve::serve(&options)
}

/// Parses one `--jobs` entry:
/// `model[:batch[:priority[:quota_mib[:arrival_us]]]]`.
fn parse_job(entry: &str) -> Result<JobRequest, String> {
    let mut parts = entry.split(':');
    let model: ModelKind = parts
        .next()
        .filter(|name| !name.is_empty())
        .ok_or_else(|| format!("--jobs entry {entry:?} is missing a model name"))?
        .parse()?;
    let mut field = |name: &str| -> Result<Option<u64>, String> {
        match parts.next() {
            None | Some("") | Some("-") => Ok(None),
            Some(text) => text
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("--jobs entry {entry:?}: {name} must be an integer")),
        }
    };
    let batch = field("batch")?.unwrap_or_else(|| model.eval_batch());
    let priority = field("priority")?.unwrap_or(1);
    let quota_mib = field("quota_mib")?;
    let arrival_us = field("arrival_us")?.unwrap_or(0);
    if parts.next().is_some() {
        return Err(format!("--jobs entry {entry:?} has too many fields"));
    }
    if batch == 0 {
        return Err(format!("--jobs entry {entry:?}: batch must be at least 1"));
    }
    let priority = u8::try_from(priority)
        .ok()
        .filter(|&p| p > 0)
        .ok_or_else(|| format!("--jobs entry {entry:?}: priority must be between 1 and 255"))?;
    Ok(JobRequest {
        model,
        batch,
        priority,
        quota_mib,
        arrival_us,
    })
}

/// The `submit` command: one exchange against a running daemon.  Shares
/// the wire client with the integration tests and kick-tires, so every
/// consumer of the service exercises the same code path.
fn submit(flags: &Flags) -> Result<(), String> {
    let addr = flags
        .addr
        .as_deref()
        .ok_or_else(|| "submit requires --addr HOST:PORT".to_string())?;
    let timeout = Duration::from_secs(60);
    let probe = |method: &str, path: &str| -> Result<(), String> {
        let (status, body) = serve::exchange(addr, method, path, None, timeout)?;
        print!("{}", body.render());
        if status == 200 {
            Ok(())
        } else {
            Err(format!("{path} answered {status}"))
        }
    };
    if flags.health {
        return probe("GET", "/healthz");
    }
    if flags.stats {
        return probe("GET", "/stats");
    }
    if flags.shutdown {
        return probe("POST", "/shutdown");
    }
    let jobs: Vec<JobRequest> = match &flags.jobs {
        Some(entries) => entries
            .split(',')
            .map(str::trim)
            .filter(|entry| !entry.is_empty())
            .map(parse_job)
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    let model: ModelKind = match (&flags.model, jobs.first()) {
        (Some(name), _) => name.parse()?,
        (None, Some(job)) => job.model,
        (None, None) => {
            return Err(
                "submit requires --model <name> or --jobs (or --health/--stats/--shutdown)"
                    .to_string(),
            )
        }
    };
    let batch = flags
        .batch
        .or_else(|| jobs.first().map(|job| job.batch))
        .unwrap_or_else(|| model.eval_batch());
    let request = RunRequest {
        model,
        batch,
        policy: flags.policies.clone().unwrap_or_else(|| "g10".to_string()),
        gpu_mib: flags.gpu_mib,
        deadline_ms: flags.deadline_ms,
        inject_fault: flags.inject_fault,
        jobs,
    };
    let (status, body) = serve::exchange(addr, "POST", "/run", Some(&request.to_json()), timeout)?;
    let summary = serve::summarize(status, &body);
    if status == 200 {
        println!("[submit] {summary}");
        Ok(())
    } else {
        Err(summary)
    }
}

/// `cache gc`: prune the persistent store to `--max-mib`.
fn cache_gc(flags: &Flags) -> Result<(), String> {
    let store = experiments::run_store().ok_or_else(|| {
        "cache gc needs a store: pass --cache-dir DIR or set G10_CACHE_DIR".to_string()
    })?;
    let max_mib = flags
        .max_mib
        .ok_or_else(|| "cache gc requires --max-mib <N>".to_string())?;
    if max_mib > (u64::MAX >> 20) {
        return Err("--max-mib out of range".to_string());
    }
    let outcome = store
        .gc(max_mib << 20)
        .map_err(|err| format!("gc of {} failed: {err}", store.root().display()))?;
    println!("{}", outcome.summary());
    Ok(())
}

/// `bench snapshot`: emit the next `BENCH_<n>.json` under the out dir.
fn bench_snapshot(flags: &Flags, out_dir: &Path) -> Result<(), String> {
    let mode = if flags.full {
        SnapshotMode::Full
    } else {
        SnapshotMode::Default
    };
    let snapshot = trajectory::collect(mode, out_dir);
    for phase in &snapshot.phases {
        println!("[bench] {:18} {:>10.1} ms", phase.name, phase.wall_ms);
    }
    for (pillar, ratio) in &snapshot.speedups {
        println!("[bench] {pillar}_speedup: {ratio:.1}x");
    }
    println!(
        "[bench] grid: {} cells replayed, {} memory hits, {} disk hits, {} CSV files",
        snapshot.grid.cells_replayed,
        snapshot.grid.memory_hits,
        snapshot.grid.disk_hits,
        snapshot.grid.csv_files
    );
    let path = trajectory::write_snapshot(&snapshot, out_dir).map_err(|err| err.to_string())?;
    println!("[bench] snapshot written to {}", path.display());
    Ok(())
}

/// `bench compare`: gate a fresh snapshot against the committed baseline.
fn bench_compare(flags: &Flags, baseline_path: &str, fresh_path: &str) -> Result<(), String> {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("could not read snapshot {path}: {err}"))?;
        Json::parse(&text).map_err(|err| format!("could not parse snapshot {path}: {err}"))
    };
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let mut opts = CompareOptions::default();
    if let Some(ratio) = flags.min_speedup_ratio {
        opts.min_speedup_ratio = ratio;
    }
    if let Some(ratio) = flags.max_wall_ratio {
        opts.max_wall_ratio = ratio;
    }
    let outcome = trajectory::compare(&baseline, &fresh, &opts);
    for pass in &outcome.passes {
        println!("[bench] ok: {pass}");
    }
    for failure in &outcome.failures {
        eprintln!("[bench] REGRESSION: {failure}");
    }
    if outcome.is_ok() {
        println!(
            "[bench] no perf regression vs {baseline_path} \
             (speedup floor ratio {}, wall ceiling ratio {})",
            opts.min_speedup_ratio, opts.max_wall_ratio
        );
        Ok(())
    } else {
        Err(format!(
            "{} perf-trajectory check(s) failed vs {baseline_path}",
            outcome.failures.len()
        ))
    }
}

fn run(command: &str, flags: &Flags, out_dir: &Path) -> Result<(), String> {
    match command {
        "run" => custom_run(flags, out_dir)?,
        "multi" => multi_cmd(flags, out_dir)?,
        "table1" => emit(&experiments::table1(), out_dir, "table1"),
        "table2" => emit(&experiments::table2(), out_dir, "table2"),
        "fig2" => emit_all(&experiments::fig2(), out_dir, "fig2"),
        "fig3" => emit(&experiments::fig3(), out_dir, "fig3"),
        "fig4" => emit_all(&experiments::fig4(), out_dir, "fig4"),
        "fig11" | "fig12" | "fig13" | "fig14" | "lifetime" => {
            let data = EndToEndRuns::collect();
            match command {
                "fig11" => emit(&experiments::fig11(&data), out_dir, "fig11"),
                "fig12" => emit(&experiments::fig12(&data), out_dir, "fig12"),
                "fig13" => emit(&experiments::fig13(&data), out_dir, "fig13"),
                "fig14" => emit(&experiments::fig14(&data), out_dir, "fig14"),
                _ => emit(&experiments::lifetime(&data), out_dir, "lifetime"),
            }
        }
        "fig15" => emit(&experiments::fig15(), out_dir, "fig15"),
        "fig16" => emit(&experiments::fig16(), out_dir, "fig16"),
        "fig17" => emit(&experiments::fig17(), out_dir, "fig17"),
        "fig18" => emit(&experiments::fig18(), out_dir, "fig18"),
        "fig19" => emit(&experiments::fig19(), out_dir, "fig19"),
        "all" => {
            for (name, driver) in experiments::figure_set() {
                figure(name, || {
                    let tables = driver();
                    if tables.len() == 1 {
                        emit(&tables[0], out_dir, name);
                    } else {
                        emit_all(&tables, out_dir, name);
                    }
                });
            }
        }
        other => return Err(format!("unknown command: {other}")),
    }
    Ok(())
}

/// Restores the default `SIGPIPE` disposition (Rust ignores the signal by
/// default) so piping output into `head`-style consumers that exit early
/// terminates this process quietly instead of panicking on a closed
/// stdout.  The daemon re-ignores `SIGPIPE` when it starts — a client
/// hanging up mid-response must never kill the server.
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positionals: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut flags = Flags::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--model" => match iter.next() {
                Some(model) => flags.model = Some(model.clone()),
                None => {
                    eprintln!("error: --model needs a model name argument");
                    return ExitCode::FAILURE;
                }
            },
            "--batch" => match iter.next().map(|b| b.parse::<u64>()) {
                Some(Ok(batch)) => flags.batch = Some(batch),
                _ => {
                    eprintln!("error: --batch needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match iter.next() {
                Some(policies) => flags.policies = Some(policies.clone()),
                None => {
                    eprintln!("error: --policy needs a policy-name argument");
                    return ExitCode::FAILURE;
                }
            },
            "--gpu-mib" => match iter.next().map(|b| b.parse::<u64>()) {
                Some(Ok(mib)) => flags.gpu_mib = Some(mib),
                _ => {
                    eprintln!("error: --gpu-mib needs an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--cache-dir" => match iter.next() {
                Some(dir) => flags.cache_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --cache-dir needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--no-cache" => flags.no_cache = true,
            "--full" => flags.full = true,
            "--inject-fault" => match iter.next().map(|plan| plan.parse::<FaultPlan>()) {
                Some(Ok(plan)) => flags.inject_fault = Some(plan),
                Some(Err(err)) => {
                    eprintln!("error: --inject-fault: {err}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --inject-fault needs a <step>:<kind> argument");
                    return ExitCode::FAILURE;
                }
            },
            "--on-fault" => match iter.next() {
                Some(mode) => flags.on_fault = Some(mode.clone()),
                None => {
                    eprintln!("error: --on-fault needs `fail` or a fallback policy name");
                    return ExitCode::FAILURE;
                }
            },
            "--deadline-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => flags.deadline_ms = Some(ms),
                _ => {
                    eprintln!("error: --deadline-ms needs an integer millisecond argument");
                    return ExitCode::FAILURE;
                }
            },
            "--addr" => match iter.next() {
                Some(addr) => flags.addr = Some(addr.clone()),
                None => {
                    eprintln!("error: --addr needs a HOST:PORT argument");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(workers)) if workers > 0 => flags.workers = Some(workers),
                _ => {
                    eprintln!("error: --workers needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--queue-depth" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(depth)) if depth > 0 => flags.queue_depth = Some(depth),
                _ => {
                    eprintln!("error: --queue-depth needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--queue-mib" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(mib)) => flags.queue_mib = Some(mib),
                _ => {
                    eprintln!("error: --queue-mib needs an integer MiB argument");
                    return ExitCode::FAILURE;
                }
            },
            "--drain-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => flags.drain_ms = Some(ms),
                _ => {
                    eprintln!("error: --drain-ms needs an integer millisecond argument");
                    return ExitCode::FAILURE;
                }
            },
            "--max-mib" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(mib)) => flags.max_mib = Some(mib),
                _ => {
                    eprintln!("error: --max-mib needs an integer MiB argument");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match iter.next() {
                Some(jobs) => flags.jobs = Some(jobs.clone()),
                None => {
                    eprintln!(
                        "error: --jobs needs a comma-separated list of \
                         model[:batch[:priority[:quota_mib[:arrival_us]]]] entries"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--tenants" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(tenants)) if tenants > 0 => flags.tenants = Some(tenants),
                _ => {
                    eprintln!("error: --tenants needs a positive integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--stress" => flags.stress_mix = true,
            "--health" => flags.health = true,
            "--stats" => flags.stats = true,
            "--shutdown" => flags.shutdown = true,
            "--min-speedup-ratio" => match iter.next().map(|v| v.parse::<f64>()) {
                Some(Ok(ratio)) => flags.min_speedup_ratio = Some(ratio),
                _ => {
                    eprintln!("error: --min-speedup-ratio needs a number argument");
                    return ExitCode::FAILURE;
                }
            },
            "--max-wall-ratio" => match iter.next().map(|v| v.parse::<f64>()) {
                Some(Ok(ratio)) => flags.max_wall_ratio = Some(ratio),
                _ => {
                    eprintln!("error: --max-wall-ratio needs a number argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: experiments <table1|table2|fig2|fig3|fig4|fig11|fig12|fig13|fig14|\
                     fig15|fig16|fig17|fig18|fig19|lifetime|all> [--out DIR]\n\
                     \x20                  [--cache-dir DIR | --no-cache]\n\
                     \n\
                     free-form runs over the open policy registry:\n\
                     \x20      experiments run --model <name> [--batch N] [--gpu-mib N]\n\
                     \x20                  [--policy <name>[,<name>...]] [--deadline-ms N]\n\
                     \n\
                     multi-tenant replay (concurrent jobs, one simulated GPU):\n\
                     \x20      experiments multi [--tenants N] [--stress] [--gpu-mib N]\n\
                     \x20                  [--policy <name>[,<name>...]]\n\
                     \n\
                     experiment service (see README \"Experiment service\"):\n\
                     \x20      experiments serve [--addr HOST:PORT] [--workers N]\n\
                     \x20                  [--queue-depth N] [--queue-mib N] [--drain-ms N]\n\
                     \x20      experiments submit --addr HOST:PORT --model <name> [--batch N]\n\
                     \x20                  [--policy <name>] [--gpu-mib N] [--deadline-ms N]\n\
                     \x20                  [--inject-fault STEP:KIND]\n\
                     \x20      experiments submit --addr HOST:PORT --jobs \
                     model[:batch[:prio[:quota_mib[:arrival_us]]]],...\n\
                     \x20                  [--policy <name>] [--gpu-mib N] [--deadline-ms N]\n\
                     \x20      experiments submit --addr HOST:PORT --health|--stats|--shutdown\n\
                     \n\
                     persistent store maintenance:\n\
                     \x20      experiments cache gc --max-mib N [--cache-dir DIR]\n\
                     \n\
                     perf-trajectory harness (see scripts/bench-compare.sh):\n\
                     \x20      experiments bench snapshot [--full] [--out DIR]\n\
                     \x20      experiments bench compare <baseline.json> <fresh.json>\n\
                     \x20                  [--min-speedup-ratio X] [--max-wall-ratio X]\n\
                     \n\
                     --policy accepts the built-in designs (ideal, base-uvm, deepum+,\n\
                     flashneuron, g10-gds, g10-host, g10) and any policy registered via\n\
                     g10_sim::register_policy; --batch defaults to the model's evaluation\n\
                     batch size.  --cache-dir DIR (or G10_CACHE_DIR=DIR) persists replayed\n\
                     cells to an on-disk store shared across processes; --no-cache\n\
                     disables it"
                );
                return ExitCode::SUCCESS;
            }
            other => positionals.push(other.to_string()),
        }
    }
    if positionals.is_empty() {
        eprintln!("error: no command given (try --help)");
        return ExitCode::FAILURE;
    }

    // Install the persistent run-cache store, if requested.  An explicit
    // flag always wins; the environment variable is the CI/dev default.
    let cache_dir = if flags.no_cache {
        None
    } else {
        flags
            .cache_dir
            .clone()
            .or_else(|| std::env::var_os("G10_CACHE_DIR").map(PathBuf::from))
    };
    if let Some(dir) = cache_dir {
        match RunStore::open(&dir) {
            Ok(store) => set_run_store(Some(store)),
            Err(err) => {
                eprintln!("error: could not open cache dir {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let started = std::time::Instant::now();
    let result = match positionals[0].as_str() {
        "bench" => match positionals.get(1).map(String::as_str) {
            Some("snapshot") => bench_snapshot(&flags, &out_dir),
            Some("compare") => match (positionals.get(2), positionals.get(3)) {
                (Some(baseline), Some(fresh)) => bench_compare(&flags, baseline, fresh),
                _ => Err("bench compare needs <baseline.json> <fresh.json>".to_string()),
            },
            _ => Err("bench needs a subcommand: snapshot | compare".to_string()),
        },
        "serve" => serve_cmd(&flags),
        "submit" => submit(&flags),
        "cache" => match positionals.get(1).map(String::as_str) {
            Some("gc") => cache_gc(&flags),
            _ => Err("cache needs a subcommand: gc".to_string()),
        },
        command => run(command, &flags, &out_dir),
    };
    let command = positionals.join(" ");
    match result {
        Ok(()) => {
            let stats = run_cache_stats();
            if stats.total() > 0 {
                println!("[experiments] {}", stats.summary());
            }
            println!(
                "[experiments] {command} finished in {:.1}s; output written to {}",
                started.elapsed().as_secs_f64(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
