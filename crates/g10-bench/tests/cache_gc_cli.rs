//! CLI coverage for `experiments cache gc --max-mib`: the maintenance
//! command a cron job would run, exercised as a real subprocess so the
//! flag parsing, store wiring and exit codes are all pinned — not just
//! the library-level [`g10_bench::store::RunStore::gc`] the unit tests
//! cover.
//!
//! Retention order is the store's contract: newest-modification-time
//! entries are kept under the cap, oldest are removed first.  The test
//! plants an old oversized entry, replays a real cell on top of it, and
//! asserts the gc pass drops exactly the old one.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("g10_cache_gc_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    dir
}

/// Runs the `experiments` binary with `args`, returning (exit-ok, stdout,
/// stderr).
fn experiments(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .env_remove("G10_CACHE_DIR")
        .output()
        .expect("spawn experiments binary");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn store_entries(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            path.extension()
                .is_some_and(|ext| ext == "g10run")
                .then(|| path.file_name()?.to_str().map(str::to_string))?
        })
        .collect();
    names.sort();
    names
}

#[test]
fn cache_gc_cli_prunes_oldest_first_and_reports_the_tally() {
    let store = fresh_dir("prune");
    let dir = store.display().to_string();

    // An old oversized "entry": 2 MiB of padding with an mtime strictly
    // older than anything written after it.  The gc pass only reads size
    // and mtime, so the content never has to parse.
    let stale = store.join("stale_b1_fake_0000000000000000.g10run");
    std::fs::write(&stale, vec![b'x'; 2 << 20]).expect("write stale entry");
    // Entry mtimes must be distinguishable; coarse-mtime filesystems get a
    // full second of margin.
    std::thread::sleep(std::time::Duration::from_millis(1100));

    // A real cell replayed through the CLI populates the store next to it.
    let (ok, stdout, stderr) = experiments(&[
        "run",
        "--model",
        "tinycnn",
        "--batch",
        "4",
        "--gpu-mib",
        "64",
        "--cache-dir",
        &dir,
        "--out",
        &store.join("results").display().to_string(),
    ]);
    assert!(ok, "seed run failed:\n{stdout}\n{stderr}");
    let before = store_entries(&store);
    assert_eq!(before.len(), 2, "store must hold both entries: {before:?}");

    // `--max-mib 1`: the fresh few-KiB entry fits under the cap, the old
    // 2 MiB one cannot — oldest-first removal must drop exactly it.
    let (ok, stdout, stderr) = experiments(&["cache", "gc", "--max-mib", "1", "--cache-dir", &dir]);
    assert!(ok, "gc must exit 0:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("cache gc: removed 1 entries (2.0 MiB), kept 1 entries"),
        "summary must report the tally: {stdout}"
    );
    let after = store_entries(&store);
    assert_eq!(after.len(), 1, "exactly one entry survives: {after:?}");
    assert!(!stale.exists(), "the old oversized entry must be removed");
    assert!(
        before.contains(&after[0]),
        "the survivor must be the newer real entry"
    );

    // The surviving entry still serves: a fresh process reports disk hits.
    let (ok, stdout, _) = experiments(&[
        "run",
        "--model",
        "tinycnn",
        "--batch",
        "4",
        "--gpu-mib",
        "64",
        "--cache-dir",
        &dir,
        "--out",
        &store.join("results").display().to_string(),
    ]);
    assert!(ok, "post-gc run failed");
    assert!(
        stdout.contains("1 disk hits"),
        "kept entry must serve the re-run from disk: {stdout}"
    );

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn cache_gc_cli_rejects_missing_flags() {
    // No store configured: a named error and a non-zero exit.
    let (ok, _, stderr) = experiments(&["cache", "gc", "--max-mib", "1", "--no-cache"]);
    assert!(!ok, "gc without a store must fail");
    assert!(stderr.contains("cache gc needs a store"), "{stderr}");

    // A store but no cap: the flag error names the missing argument.
    let store = fresh_dir("noflag");
    let dir = store.display().to_string();
    let (ok, _, stderr) = experiments(&["cache", "gc", "--cache-dir", &dir]);
    assert!(!ok, "gc without --max-mib must fail");
    assert!(stderr.contains("--max-mib"), "{stderr}");
    let _ = std::fs::remove_dir_all(&store);
}
