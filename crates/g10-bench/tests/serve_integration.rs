//! Integration and chaos tests for the experiment service.
//!
//! Daemons run as real subprocesses of the `experiments` binary (the
//! persistent-cache suite's idiom): cold restarts are genuine — a fresh
//! process has an empty in-memory cell cache, so cross-restart hits must
//! come from the on-disk store — and one test's daemon cannot leak
//! in-process state into another's.  Clients go through
//! [`g10_bench::serve::exchange`], the same wire client `experiments
//! submit` and kick-tires use.

use g10_bench::json::Json;
use g10_bench::serve::exchange;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "g10_serve_integration_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `experiments serve` with `extra` flags and waits for the
    /// startup line, which carries the ephemeral port.
    fn spawn(store: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(["--cache-dir", &store.display().to_string()])
            .args(extra)
            .env_remove("G10_CACHE_DIR")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("could not spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout piped");
        let (send, recv) = mpsc::channel();
        std::thread::spawn(move || {
            // Forward the startup line, then keep draining so the daemon
            // never blocks on a full pipe.
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if line.contains("listening on ") {
                    let _ = send.send(line);
                }
            }
        });
        let line = recv
            .recv_timeout(TIMEOUT)
            .expect("daemon did not print its listening address");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("malformed listening line")
            .to_string();
        Daemon { child, addr }
    }

    /// Posts `/shutdown` and asserts the daemon drains and exits cleanly.
    fn shutdown(mut self) {
        let (status, _) =
            exchange(&self.addr, "POST", "/shutdown", None, TIMEOUT).expect("shutdown exchange");
        assert_eq!(status, 200, "shutdown must be acknowledged");
        let deadline = Instant::now() + TIMEOUT;
        loop {
            if let Some(exit) = self.child.try_wait().expect("wait on daemon") {
                assert!(exit.success(), "daemon must exit cleanly, got {exit:?}");
                return;
            }
            assert!(Instant::now() < deadline, "daemon did not exit after drain");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn submit(&self, body: &Json) -> (u16, Json) {
        exchange(&self.addr, "POST", "/run", Some(body), TIMEOUT).expect("run exchange")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn run_body(model: &str, batch: u64, policy: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut entries = vec![
        ("model", Json::Str(model.to_string())),
        ("batch", Json::Num(batch as f64)),
        ("policy", Json::Str(policy.to_string())),
        ("gpu_mib", Json::Num(64.0)),
    ];
    entries.extend(extra);
    g10_bench::json::obj(entries)
}

fn response_tag(status: u16, body: &Json) -> String {
    if body.get("status").and_then(Json::as_str) == Some("ok") {
        assert_eq!(status, 200, "ok bodies must ride a 200");
        format!(
            "ok:{}",
            body.get("source").and_then(Json::as_str).unwrap_or("?")
        )
    } else {
        let kind = body
            .path("error.kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("error body without kind: {body:?}"));
        assert!(
            body.path("error.message").and_then(Json::as_str).is_some(),
            "error body without message: {body:?}"
        );
        format!("{status}:{kind}")
    }
}

/// The acceptance chaos run: concurrent clients mixing valid, duplicate,
/// unknown-policy, fault-injected, short-deadline and oversized requests
/// against a deliberately tiny daemon.  Every response must be typed, the
/// byte cap must shed at least once with a 503, `/healthz` must stay OK
/// throughout, and graceful shutdown must drain the last in-flight
/// request rather than dropping it.
#[test]
fn chaos_mixed_clients_all_get_typed_responses() {
    let store = fresh_dir("chaos");
    // queue-mib 8: a batch-4 request (~4 MiB estimate) fits, a batch-32
    // request (~32 MiB) is deterministically over the byte cap.
    let daemon = Daemon::spawn(
        &store,
        &["--workers", "1", "--queue-depth", "2", "--queue-mib", "8"],
    );

    let kinds: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for round in 0u64..3 {
            // Valid + duplicate (same cell every round and thread).
            for _ in 0..2 {
                let daemon = &daemon;
                handles.push(scope.spawn(move || {
                    let (status, body) = daemon.submit(&run_body("tinycnn", 4, "g10", vec![]));
                    response_tag(status, &body)
                }));
            }
            // Unknown policy.
            let daemon_ref = &daemon;
            handles.push(scope.spawn(move || {
                let (status, body) =
                    daemon_ref.submit(&run_body("tinycnn", 4, "no-such-policy", vec![]));
                response_tag(status, &body)
            }));
            // Fault-injected.
            handles.push(scope.spawn(move || {
                let (status, body) = daemon_ref.submit(&run_body(
                    "tinycnn",
                    4,
                    "base-uvm",
                    vec![("inject_fault", Json::Str("2:step-panic".to_string()))],
                ));
                response_tag(status, &body)
            }));
            // Short deadline: expired before admission even queues it.
            handles.push(scope.spawn(move || {
                let (status, body) = daemon_ref.submit(&run_body(
                    "tinycnn",
                    4,
                    "g10",
                    vec![("deadline_ms", Json::Num(0.0))],
                ));
                response_tag(status, &body)
            }));
            // Over the byte cap: deterministic shed.
            handles.push(scope.spawn(move || {
                let (status, body) =
                    daemon_ref.submit(&run_body("tinycnn", 32 + round, "g10", vec![]));
                response_tag(status, &body)
            }));
            // Health probe interleaved with the storm.
            handles.push(scope.spawn(move || {
                let (status, body) =
                    exchange(&daemon_ref.addr, "GET", "/healthz", None, TIMEOUT).expect("healthz");
                assert_eq!(status, 200, "healthz must stay OK under chaos: {body:?}");
                assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
                "health:ok".to_string()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Under contention any run request may legitimately be shed instead of
    // reaching its own outcome, so the storm asserts the global contract —
    // every response typed, the byte cap observed shedding — and exact
    // per-category outcomes are pinned by the sequential pass below.
    let allowed = [
        "ok:replayed",
        "ok:memory",
        "ok:disk",
        "health:ok",
        "400:unknown-policy",
        "500:policy-fault",
        "504:deadline-exceeded",
        "504:cancelled",
        "503:overloaded",
    ];
    for tag in &kinds {
        assert!(allowed.contains(&tag.as_str()), "untyped response: {tag}");
    }
    let count = |prefix: &str| kinds.iter().filter(|t| t.starts_with(prefix)).count();
    assert!(
        count("503:overloaded") >= 3,
        "the over-cap request of each round must shed: {kinds:?}"
    );
    assert_eq!(count("health:ok"), 3, "{kinds:?}");

    // Sequential pass against the now-idle daemon: with an empty queue
    // nothing sheds, so each request class must reach its exact outcome.
    let sequential = [
        (run_body("tinycnn", 4, "g10", vec![]), "ok:"),
        (
            run_body("tinycnn", 4, "no-such-policy", vec![]),
            "400:unknown-policy",
        ),
        (
            run_body(
                "tinycnn",
                4,
                "base-uvm",
                vec![("inject_fault", Json::Str("2:step-panic".to_string()))],
            ),
            "500:policy-fault",
        ),
        (
            run_body("tinycnn", 4, "g10", vec![("deadline_ms", Json::Num(0.0))]),
            "504:deadline-exceeded",
        ),
        (run_body("tinycnn", 32, "g10", vec![]), "503:overloaded"),
    ];
    for (body, expected) in sequential {
        let (status, response) = daemon.submit(&body);
        let tag = response_tag(status, &response);
        assert!(tag.starts_with(expected), "expected {expected}, got {tag}");
    }

    // Graceful shutdown drains in-flight work: race a fresh (uncached)
    // request against the shutdown; it must still get its full typed
    // response, and the daemon must still exit cleanly.
    let straggler = {
        let daemon_ref = &daemon;
        std::thread::spawn({
            let addr = daemon_ref.addr.clone();
            move || {
                let body = run_body("tinycnn", 7, "base-uvm", vec![]);
                exchange(&addr, "POST", "/run", Some(&body), TIMEOUT).expect("straggler exchange")
            }
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    daemon.shutdown();
    let (status, body) = straggler.join().expect("straggler thread");
    let tag = response_tag(status, &body);
    assert!(
        tag == "ok:replayed" || tag == "503:shutting-down" || tag == "504:cancelled",
        "in-flight request neither answered nor shed: {tag}"
    );

    let _ = std::fs::remove_dir_all(&store);
}

/// Cold restart: a cell replayed by one daemon process is served by the
/// next one as a disk hit with a bit-identical report fingerprint.
#[test]
fn cold_restart_serves_prior_cells_byte_identically() {
    let store = fresh_dir("restart");
    let body = run_body("tinycnn", 6, "g10", vec![]);

    let first = Daemon::spawn(&store, &[]);
    let (status, response) = first.submit(&body);
    assert_eq!(status, 200, "first run must succeed: {response:?}");
    assert_eq!(
        response.get("source").and_then(Json::as_str),
        Some("replayed"),
        "a fresh store must be a miss"
    );
    let fingerprint = response
        .path("report.fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint present")
        .to_string();
    first.shutdown();

    let second = Daemon::spawn(&store, &[]);
    let (status, response) = second.submit(&body);
    assert_eq!(status, 200, "replayed cell must load after restart");
    assert_eq!(
        response.get("source").and_then(Json::as_str),
        Some("disk"),
        "a cold process must hit the persistent store: {response:?}"
    );
    assert_eq!(
        response.path("report.fingerprint").and_then(Json::as_str),
        Some(fingerprint.as_str()),
        "restart must serve the prior cell bit-identically"
    );
    second.shutdown();

    let _ = std::fs::remove_dir_all(&store);
}

/// Multi-job requests: a `jobs: [...]` body replays the mix through the
/// tenancy subsystem, answers with per-tenant summaries and a
/// deterministic mix fingerprint, and `/stats` tallies tenants served and
/// shed per job, not per request.
#[test]
fn multi_job_requests_run_the_mix_and_count_tenants() {
    let store = fresh_dir("multi");
    let daemon = Daemon::spawn(&store, &[]);
    let job = |model: &str, batch: u64, priority: u64, quota_mib: u64, arrival_us: u64| {
        g10_bench::json::obj(vec![
            ("model", Json::Str(model.to_string())),
            ("batch", Json::Num(batch as f64)),
            ("priority", Json::Num(priority as f64)),
            ("quota_mib", Json::Num(quota_mib as f64)),
            ("arrival_us", Json::Num(arrival_us as f64)),
        ])
    };
    let body = g10_bench::json::obj(vec![
        ("policy", Json::Str("tensile".to_string())),
        ("gpu_mib", Json::Num(64.0)),
        (
            "jobs",
            Json::Arr(vec![
                job("tinycnn", 64, 4, 40, 0),
                job("tinytransformer", 32, 1, 8, 20),
            ]),
        ),
    ]);

    let (status, response) = daemon.submit(&body);
    assert_eq!(status, 200, "multi run must succeed: {response:?}");
    assert_eq!(response.get("source").and_then(Json::as_str), Some("multi"));
    assert_eq!(
        response.path("report.tenants").and_then(Json::as_u64),
        Some(2)
    );
    let jobs = response
        .path("report.jobs")
        .and_then(Json::as_arr)
        .expect("per-tenant summaries present");
    assert_eq!(jobs.len(), 2);
    for job in jobs {
        assert!(job.get("name").and_then(Json::as_str).is_some());
        assert!(job.get("fingerprint").and_then(Json::as_str).is_some());
    }
    let fingerprint = response
        .path("report.fingerprint")
        .and_then(Json::as_str)
        .expect("mix fingerprint present")
        .to_string();

    // The same mix again: bit-identical, and four tenants served in total.
    let (status, again) = daemon.submit(&body);
    assert_eq!(status, 200);
    assert_eq!(
        again.path("report.fingerprint").and_then(Json::as_str),
        Some(fingerprint.as_str()),
        "multi replay must be deterministic across requests"
    );

    // A failing mix (unknown policy) sheds both its tenants.
    let bad = g10_bench::json::obj(vec![
        ("policy", Json::Str("no-such-design".to_string())),
        (
            "jobs",
            Json::Arr(vec![
                job("tinycnn", 8, 1, 16, 0),
                job("tinycnn", 8, 1, 16, 5),
            ]),
        ),
    ]);
    let (status, response) = daemon.submit(&bad);
    assert_eq!(status, 400, "unknown policy is the client's fault");
    assert_eq!(
        response.path("error.kind").and_then(Json::as_str),
        Some("unknown-policy")
    );

    let (status, stats) =
        exchange(&daemon.addr, "GET", "/stats", None, TIMEOUT).expect("stats exchange");
    assert_eq!(status, 200);
    assert_eq!(stats.get("multi_requests").and_then(Json::as_u64), Some(3));
    assert_eq!(stats.get("tenants_served").and_then(Json::as_u64), Some(4));
    assert_eq!(stats.get("tenants_shed").and_then(Json::as_u64), Some(2));

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

/// A cancelled replay writes nothing to either cache layer: no store
/// entry, no memoised cell — and the cell is not poisoned, a later
/// uncancelled run replays and persists normally.
#[test]
fn cancelled_run_leaves_no_partial_store_write() {
    use g10_bench::experiments::{cached_run_cancellable, set_run_store, CacheOutcome};
    use g10_bench::store::RunStore;
    use g10_core::config::SystemConfig;
    use g10_dnn::models::ModelKind;
    use g10_sim::{CancelToken, PolicyKind, SimError};

    let dir = fresh_dir("no_partial_write");
    set_run_store(Some(RunStore::open(&dir).expect("open store")));
    let store = g10_bench::experiments::run_store().expect("store installed");
    let config = SystemConfig::table2().with_gpu_memory(48 << 20);

    // Mid-replay cancellation: typed error, empty store, nothing memoised.
    let cancelled = cached_run_cancellable(
        ModelKind::TinyCnn,
        9,
        PolicyKind::BaseUvm,
        &config,
        CancelToken::at_step(1),
    );
    match cancelled {
        Err(SimError::DeadlineExceeded { step, .. }) => assert_eq!(step, 1),
        other => panic!("expected a typed deadline error, got {other:?}"),
    }
    assert_eq!(store.entry_count(), 0, "cancelled run must not persist");

    // The cell is not poisoned: a fresh token replays and persists.
    let (report, outcome) = cached_run_cancellable(
        ModelKind::TinyCnn,
        9,
        PolicyKind::BaseUvm,
        &config,
        CancelToken::new(),
    )
    .expect("uncancelled run succeeds");
    assert_eq!(outcome, CacheOutcome::Replayed);
    assert_eq!(report.batch, 9);
    assert_eq!(store.entry_count(), 1, "completed run must persist");

    set_run_store(None);
    let _ = std::fs::remove_dir_all(&dir);
}
