//! Cross-process behaviour of the persistent run cache.
//!
//! The in-memory cell map cannot be evicted within a process, so the disk
//! path is exercised the way users hit it: by spawning the `experiments`
//! binary as fresh processes against a shared `--cache-dir` and asserting
//! on its printed run-cache tally and its CSV bytes.

use g10_bench::experiments::{cached_run, run_cache_stats, run_store, set_run_store};
use g10_bench::store::{RunKey, RunStore};
use g10_core::config::SystemConfig;
use g10_dnn::models::ModelKind;
use g10_sim::PolicyKind;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("g10_persistent_cache_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs the `experiments` binary with `args`, insulated from any ambient
/// `G10_CACHE_DIR`, and returns its output (panicking on a non-zero exit).
fn experiments(args: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .env_remove("G10_CACHE_DIR")
        .output()
        .expect("experiments binary should spawn");
    assert!(
        out.status.success(),
        "experiments {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Extracts `(replayed, memory_hits, disk_hits)` from the binary's
/// `[experiments] simulation cells: …` tally line.
fn cache_tally(output: &Output) -> (u64, u64, u64) {
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find(|line| line.contains("simulation cells:"))
        .unwrap_or_else(|| panic!("no run-cache tally line in:\n{stdout}"));
    let numbers: Vec<u64> = line
        .split(|c: char| !c.is_ascii_digit())
        .filter(|part| !part.is_empty())
        .map(|part| part.parse().unwrap())
        .collect();
    assert_eq!(numbers.len(), 3, "unexpected tally line: {line}");
    (numbers[0], numbers[1], numbers[2])
}

const RUN_ARGS: &[&str] = &[
    "run",
    "--model",
    "tinycnn",
    "--batch",
    "16",
    "--policy",
    "base-uvm,deepum+,g10",
];

const RUN_CSV: &str = "run_TinyCNN_16.csv";

fn run_with(cache: &Path, out: &Path) -> Output {
    experiments(
        &[
            RUN_ARGS,
            &[
                "--cache-dir",
                cache.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
            ],
        ]
        .concat(),
    )
}

#[test]
fn warm_process_serves_every_cell_from_disk_byte_identically() {
    let cache = fresh_dir("warm_cache");
    let out1 = fresh_dir("warm_out1");
    let out2 = fresh_dir("warm_out2");

    let cold = run_with(&cache, &out1);
    let (replayed, _, disk) = cache_tally(&cold);
    assert!(replayed > 0, "cold run must replay its cells");
    assert_eq!(disk, 0, "cold run has nothing on disk yet");

    let warm = run_with(&cache, &out2);
    let (replayed, memory, disk) = cache_tally(&warm);
    assert_eq!(replayed, 0, "warm fresh process must not replay anything");
    assert_eq!(
        memory, 0,
        "first touches in a fresh process are not memory hits"
    );
    assert!(disk > 0, "warm run must hit the on-disk store");

    let cold_csv = fs::read(out1.join(RUN_CSV)).unwrap();
    let warm_csv = fs::read(out2.join(RUN_CSV)).unwrap();
    assert_eq!(cold_csv, warm_csv, "disk-served CSV must be byte-identical");
}

#[test]
fn no_cache_flag_keeps_the_store_untouched() {
    let cache = fresh_dir("nocache_cache");
    let out = fresh_dir("nocache_out");
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(RUN_ARGS)
        .args(["--no-cache", "--out", out.to_str().unwrap()])
        // --no-cache must win even when the environment opts in.
        .env("G10_CACHE_DIR", &cache)
        .output()
        .expect("experiments binary should spawn");
    assert!(output.status.success());
    let (replayed, _, disk) = cache_tally(&output);
    assert!(replayed > 0);
    assert_eq!(disk, 0);
    assert!(
        !cache.exists() || fs::read_dir(&cache).unwrap().next().is_none(),
        "--no-cache must not populate the store"
    );
}

#[test]
fn env_var_enables_the_store_like_the_flag() {
    let cache = fresh_dir("env_cache");
    let out = fresh_dir("env_out");
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(RUN_ARGS)
        .args(["--out", out.to_str().unwrap()])
        .env("G10_CACHE_DIR", &cache)
        .output()
        .expect("experiments binary should spawn");
    assert!(output.status.success());
    let store = RunStore::open(&cache).unwrap();
    assert!(
        store.entry_count() > 0,
        "G10_CACHE_DIR must populate the store"
    );
}

#[test]
fn corrupted_entries_degrade_to_a_clean_replay() {
    let cache = fresh_dir("corrupt_cache");
    let out1 = fresh_dir("corrupt_out1");
    let out2 = fresh_dir("corrupt_out2");

    run_with(&cache, &out1);
    // Truncate every entry in place: the warm run must fall back to replay
    // (and overwrite the damaged entries) without failing or mis-serving.
    let mut damaged = 0;
    for entry in fs::read_dir(&cache).unwrap().filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.extension().is_some_and(|ext| ext == "g10run") {
            let bytes = fs::read(&path).unwrap();
            fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            damaged += 1;
        }
    }
    assert!(damaged > 0, "cold run must have written entries");

    let warm = run_with(&cache, &out2);
    let (replayed, _, disk) = cache_tally(&warm);
    assert!(replayed > 0, "corrupt entries must be replayed, not served");
    assert_eq!(disk, 0);
    let cold_csv = fs::read(out1.join(RUN_CSV)).unwrap();
    let warm_csv = fs::read(out2.join(RUN_CSV)).unwrap();
    assert_eq!(cold_csv, warm_csv, "replayed output must be unchanged");
}

#[test]
fn cached_run_persists_entries_the_store_can_load_back() {
    // In-process check that `cached_run` both writes through to the store
    // and produces an entry equal to its own return value.  The store is
    // process-global, so restore it before the test ends.
    let cache = fresh_dir("inprocess_cache");
    let store = RunStore::open(&cache).unwrap();
    set_run_store(Some(store));
    let config = SystemConfig::table2();
    let before = run_cache_stats();
    let report = cached_run(ModelKind::TinyCnn, 16, PolicyKind::Ideal, &config);
    let delta = run_cache_stats().since(&before);
    assert_eq!(delta.replayed, 1);
    let key = RunKey {
        model: ModelKind::TinyCnn.name().to_string(),
        batch: 16,
        policy: PolicyKind::Ideal.label().to_string(),
        config: config.cache_key(),
    };
    let store = run_store().expect("store was just installed");
    let loaded = store.load(&key).expect("cached_run must write through");
    assert_eq!(loaded, *report);
    set_run_store(None);
}
