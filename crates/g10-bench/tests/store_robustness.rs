//! Corruption and concurrency robustness of the persistent run store.
//!
//! The store's contract is "never serve a wrong report": any damaged,
//! truncated, misversioned, or misfiled entry must load as `None` (the
//! caller then replays), and concurrent writers must never expose a
//! partial entry to readers.

use g10_bench::store::{checksum, decode_entry, encode_entry, RunKey, RunStore, SCHEMA_VERSION};
use g10_sim::{FaultRecord, PolicyFaultKind, SimReport};
use g10_time::Nanos;
use g10_uvm::TrafficStats;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("g10_store_robustness_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_key() -> RunKey {
    RunKey {
        model: "TinyCNN".to_string(),
        batch: 16,
        policy: "Base UVM".to_string(),
        config: [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8],
    }
}

/// A report exercising every serialised field with distinct values,
/// including float bit patterns that would drift under text formatting.
fn sample_report() -> SimReport {
    SimReport {
        model: "TinyCNN".to_string(),
        batch: 16,
        policy: "Base UVM".to_string(),
        total_time: Nanos::from_nanos(123_456_789),
        ideal_time: Nanos::from_nanos(100_000_000),
        stall_time: Nanos::from_nanos(23_456_789),
        kernel_slowdowns: vec![1.0, 1.25, f64::from_bits(0x3FF5_5555_5555_5555)],
        traffic: TrafficStats {
            gpu_to_ssd_bytes: 11,
            ssd_to_gpu_bytes: 22,
            gpu_to_host_bytes: 33,
            host_to_gpu_bytes: 44,
        },
        fault_count: 5,
        prefetches_issued: 6,
        prefetches_dropped: 7,
        evictions_issued: 8,
        oversubscribed: true,
        working_set_exceeds_gpu: false,
        // A fallback-degradation record, so every corruption sweep below
        // also covers the fault encoding.
        policy_fault: Some(FaultRecord {
            policy: "hostile-policy".to_string(),
            step: 3,
            kind: PolicyFaultKind::CapacityExceeded {
                used_bytes: 777,
                allowed_bytes: 555,
            },
        }),
    }
}

/// Every fault kind round-trips through the entry encoding bit-exactly.
#[test]
fn every_fault_kind_roundtrips() {
    let key = sample_key();
    let kinds = [
        PolicyFaultKind::BuildPanic {
            message: "boom".to_string(),
        },
        PolicyFaultKind::StepPanic {
            message: "mid-run boom".to_string(),
        },
        PolicyFaultKind::TensorOutOfRange {
            tensor: 99,
            universe: 12,
        },
        PolicyFaultKind::EvictNonResident { tensor: 4 },
        PolicyFaultKind::PrefetchResident { tensor: 5 },
        PolicyFaultKind::CapacityExceeded {
            used_bytes: 10,
            allowed_bytes: 9,
        },
        PolicyFaultKind::LedgerCorrupt {
            ledger_bytes: 1,
            prefix_bytes: 2,
        },
        PolicyFaultKind::TimeRegression {
            from: Nanos::from_nanos(7),
            to: Nanos::from_nanos(3),
        },
        PolicyFaultKind::NonFiniteSlowdown { kernel: 6 },
        PolicyFaultKind::ResidencyDesync {
            tracked_bytes: 8,
            allocated_bytes: 9,
        },
    ];
    for kind in kinds {
        let mut report = sample_report();
        report.policy_fault = Some(FaultRecord {
            policy: "adversary".to_string(),
            step: 41,
            kind,
        });
        let bytes = encode_entry(&key, &report);
        let loaded = decode_entry(&bytes, &key).expect("fault entry must decode");
        assert_eq!(loaded, report);
    }
    // And the clean-run case.
    let mut report = sample_report();
    report.policy_fault = None;
    let bytes = encode_entry(&key, &report);
    assert_eq!(decode_entry(&bytes, &key), Some(report));
}

#[test]
fn roundtrip_preserves_every_field() {
    let store = RunStore::open(fresh_dir("roundtrip")).unwrap();
    let key = sample_key();
    let report = sample_report();
    assert!(store.load(&key).is_none(), "empty store must miss");
    store.save(&key, &report).unwrap();
    assert_eq!(store.entry_count(), 1);
    let loaded = store.load(&key).expect("saved entry must load");
    assert_eq!(loaded, report);
    // Bit-exact floats, not just approximately-equal ones.
    for (a, b) in loaded
        .kernel_slowdowns
        .iter()
        .zip(report.kernel_slowdowns.iter())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn truncated_entries_miss_cleanly() {
    let store = RunStore::open(fresh_dir("truncated")).unwrap();
    let key = sample_key();
    let report = sample_report();
    store.save(&key, &report).unwrap();
    let path = store.entry_path(&key);
    let full = fs::read(&path).unwrap();
    // Every possible truncation point, including an empty file.
    for cut in 0..full.len() {
        fs::write(&path, &full[..cut]).unwrap();
        assert!(
            store.load(&key).is_none(),
            "truncation at byte {cut} must not load"
        );
    }
}

#[test]
fn garbage_bytes_miss_cleanly() {
    let store = RunStore::open(fresh_dir("garbage")).unwrap();
    let key = sample_key();
    let report = sample_report();
    store.save(&key, &report).unwrap();
    let path = store.entry_path(&key);
    let full = fs::read(&path).unwrap();
    // Flip one byte at a time: the trailing checksum must catch each one.
    for pos in 0..full.len() {
        let mut damaged = full.clone();
        damaged[pos] ^= 0x5A;
        fs::write(&path, &damaged).unwrap();
        assert!(
            store.load(&key).is_none(),
            "corrupt byte at {pos} must not load"
        );
    }
    // Outright noise instead of an entry.
    fs::write(&path, b"not a store entry at all").unwrap();
    assert!(store.load(&key).is_none());
}

#[test]
fn wrong_schema_version_misses_even_with_valid_checksum() {
    let store = RunStore::open(fresh_dir("version")).unwrap();
    let key = sample_key();
    let report = sample_report();
    store.save(&key, &report).unwrap();
    let path = store.entry_path(&key);
    let full = fs::read(&path).unwrap();
    // Rewrite the version word (bytes 8..12, after the 8-byte magic) and
    // recompute the trailing checksum so only the version check can fail.
    let mut forged = full.clone();
    forged[8..12].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
    let body_len = forged.len() - 8;
    let sum = checksum(&forged[..body_len]);
    forged[body_len..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&path, &forged).unwrap();
    assert!(
        store.load(&key).is_none(),
        "future-version entries must miss, not be misread"
    );
}

#[test]
fn key_echo_rejects_misfiled_entries() {
    let key = sample_key();
    let report = sample_report();
    let bytes = encode_entry(&key, &report);
    assert!(decode_entry(&bytes, &key).is_some());
    // The same bytes presented for any other cell must be rejected,
    // whichever key component differs.
    let mut other_model = key.clone();
    other_model.model = "BERT-Base".to_string();
    assert!(decode_entry(&bytes, &other_model).is_none());
    let mut other_batch = key.clone();
    other_batch.batch = 32;
    assert!(decode_entry(&bytes, &other_batch).is_none());
    let mut other_policy = key.clone();
    other_policy.policy = "G10".to_string();
    assert!(decode_entry(&bytes, &other_policy).is_none());
    let mut other_config = key.clone();
    other_config.config[11] ^= 1;
    assert!(decode_entry(&bytes, &other_config).is_none());
}

#[test]
fn concurrent_writers_and_readers_never_observe_partial_entries() {
    let store = Arc::new(RunStore::open(fresh_dir("concurrent")).unwrap());
    let key = sample_key();
    let report = sample_report();
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let key = key.clone();
            let report = report.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    store.save(&key, &report).unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let key = key.clone();
            let report = report.clone();
            std::thread::spawn(move || {
                let mut hits = 0u32;
                for _ in 0..200 {
                    // Either a miss (not yet written) or the full report —
                    // never a torn or partial entry.
                    if let Some(loaded) = store.load(&key) {
                        assert_eq!(loaded, report);
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    // After the dust settles: exactly one entry, loadable, no leaked temps.
    assert_eq!(store.entry_count(), 1);
    assert_eq!(store.load(&key).unwrap(), report);
    let leftovers: Vec<_> = fs::read_dir(store.root())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files must not outlive saves");
}

/// Garbage collection racing live readers and writers: a reader mid-`load`
/// never observes a torn entry — every lookup returns either the exact
/// saved report or a clean miss — and gc itself never errors when entries
/// vanish or reappear underneath it.  (Entries are whole files renamed
/// into place, so an unlink can only hide an entry, never corrupt it.)
#[test]
fn gc_under_concurrent_readers_never_serves_a_torn_entry() {
    let dir = fresh_dir("gc_concurrent");
    let store = Arc::new(RunStore::open(&dir).unwrap());
    let key = sample_key();
    let report = sample_report();
    store.save(&key, &report).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let store = Arc::clone(&store);
        let key = key.clone();
        let report = report.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut hits = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                // A `None` means gc won the race; a miss is the contract.
                if let Some(loaded) = store.load(&key) {
                    assert_eq!(loaded, report, "reader must never see a torn entry");
                    hits += 1;
                }
            }
            hits
        })
    };

    // Alternate gc-to-zero (removes the entry) with re-saves while the
    // reader hammers load().
    let mut removed_total = 0usize;
    for _ in 0..200 {
        let outcome = store.gc(0).unwrap();
        removed_total += outcome.removed;
        store.save(&key, &report).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let hits = reader.join().unwrap();
    assert!(removed_total > 0, "gc must actually have pruned entries");
    assert!(hits > 0, "reader must have observed live entries");

    // Final state: the last save survives and gc under a generous cap
    // keeps it.
    let outcome = store.gc(u64::MAX).unwrap();
    assert_eq!(outcome.kept, 1);
    assert_eq!(outcome.removed, 0);
    assert_eq!(store.load(&key).unwrap(), report);
    let _ = fs::remove_dir_all(&dir);
}

/// Size-capped gc keeps the newest entries and prints an honest tally.
#[test]
fn gc_prunes_oldest_entries_first_under_a_byte_cap() {
    let dir = fresh_dir("gc_oldest_first");
    let store = RunStore::open(&dir).unwrap();
    let report = sample_report();
    let mut keys = Vec::new();
    for i in 0..4 {
        let mut key = sample_key();
        key.batch = 100 + i;
        store.save(&key, &report).unwrap();
        keys.push(key);
    }
    // Saves may land within one mtime granule; gc breaks mtime ties by
    // filename, so the *counts* below are deterministic regardless.
    let entry_size = fs::metadata(store.entry_path(&keys[0])).unwrap().len();
    let outcome = store.gc(entry_size * 2).unwrap();
    assert_eq!(outcome.kept, 2, "cap of two entry-sizes keeps two entries");
    assert_eq!(outcome.removed, 2);
    assert_eq!(outcome.kept_bytes, entry_size * 2);
    assert_eq!(outcome.removed_bytes, entry_size * 2);
    assert_eq!(store.entry_count(), 2);
    let summary = outcome.summary();
    assert!(
        summary.contains("removed 2 entries") && summary.contains("kept 2 entries"),
        "tally must be honest: {summary}"
    );
    // gc to zero empties the store.
    let outcome = store.gc(0).unwrap();
    assert_eq!(outcome.kept, 0);
    assert_eq!(store.entry_count(), 0);
    let _ = fs::remove_dir_all(&dir);
}
