//! Criterion bench: end-to-end replay of the Figure-11 workloads under the
//! full G10 design (plan + replay), one benchmark per evaluated model.

use criterion::{criterion_group, criterion_main, Criterion};
use g10_core::config::SystemConfig;
use g10_dnn::models::ModelKind;
use g10_sim::runner::{run_policy, PolicyKind, Workload};

fn bench_replay(c: &mut Criterion) {
    let config = SystemConfig::table2();
    let mut group = c.benchmark_group("fig11_replay_g10");
    group.sample_size(10);
    for model in ModelKind::PAPER_MODELS {
        let workload = Workload::new(model, model.eval_batch());
        group.bench_function(model.name(), |b| {
            b.iter(|| run_policy(&workload, PolicyKind::G10Full, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
