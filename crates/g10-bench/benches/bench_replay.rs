//! Criterion bench: replay-engine scaling — the naive linear-scan victim
//! selection vs the incremental victim index, replaying the synthetic deep
//! GPT stress workload (`g10_dnn::models::stress`) under the
//! eviction-heaviest designs (Base UVM and DeepUM+) on a GPU sized to half
//! the workload's peak live bytes.
//!
//! Both engine paths replay identical workloads, so the printed means are
//! directly comparable; the `replay_speedup` lines summarise the ratio and
//! assert that the two paths produce identical `SimReport`s.  A second
//! group keeps the Figure-11 end-to-end G10 replays (plan + replay per
//! paper model) visible.  Set `G10_BENCH_SMOKE=1` to run a reduced size
//! (used by the scheduled CI job to keep replay wall-time visible without
//! paying for the full 10k-kernel naive baseline).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use g10_core::config::SystemConfig;
use g10_core::vitality::VitalityAnalysis;
use g10_dnn::models::stress::StressGptConfig;
use g10_dnn::models::ModelKind;
use g10_sim::{
    parallel_map, Experiment, PolicyKind, RuntimeOptions, SimReport, VictimSelection, Workload,
};
use std::time::Instant;

struct StressCase {
    label: String,
    workload: Workload,
    config: SystemConfig,
}

fn stress_case(target_kernels: usize) -> StressCase {
    // Batch 2: small activations, so the constrained GPU holds many
    // resident tensors and victim selection dominates the naive path.
    let workload = Workload::stress(2, &StressGptConfig::with_target_kernels(target_kernels));
    let analysis = VitalityAnalysis::analyze(&workload.graph, &workload.trace);
    // Half the peak live bytes: deep oversubscription, so the replay faults
    // and evicts continuously at every size.
    let config = SystemConfig::table2().with_gpu_memory(analysis.peak_live_bytes() / 2);
    StressCase {
        label: format!("{}_kernels", workload.graph.num_kernels()),
        workload,
        config,
    }
}

fn replay(case: &StressCase, policy: PolicyKind, selection: VictimSelection) -> SimReport {
    Experiment::new(&case.workload)
        .policy(policy)
        .config(case.config)
        .options(RuntimeOptions {
            victim_selection: selection,
            ..RuntimeOptions::default()
        })
        .run()
        .expect("built-in policies resolve")
}

const POLICIES: [PolicyKind; 2] = [PolicyKind::BaseUvm, PolicyKind::DeepUmPlus];

fn bench_replay(c: &mut Criterion) {
    let smoke = std::env::var("G10_BENCH_SMOKE").is_ok();
    let sizes: &[usize] = if smoke { &[1_000] } else { &[2_000, 10_000] };
    let cases = parallel_map(sizes.to_vec(), |target| stress_case(*target));

    let mut group = c.benchmark_group("replay_indexed");
    group.sample_size(if smoke { 3 } else { 5 });
    for case in &cases {
        for policy in POLICIES {
            group.bench_function(format!("{}/{}", case.label, policy), |b| {
                b.iter(|| black_box(replay(case, policy, VictimSelection::Indexed)))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("replay_naive");
    group.sample_size(if smoke { 3 } else { 2 });
    for case in &cases {
        for policy in POLICIES {
            group.bench_function(format!("{}/{}", case.label, policy), |b| {
                b.iter(|| black_box(replay(case, policy, VictimSelection::NaiveScan)))
            });
        }
    }
    group.finish();

    // One timed head-to-head run per (size, policy) so the ratio is printed
    // directly, with report identity asserted on the way.
    for case in &cases {
        for policy in POLICIES {
            let start = Instant::now();
            let indexed = replay(case, policy, VictimSelection::Indexed);
            let indexed_time = start.elapsed();
            let start = Instant::now();
            let naive = replay(case, policy, VictimSelection::NaiveScan);
            let naive_time = start.elapsed();
            assert_eq!(indexed, naive, "naive and indexed replays diverged");
            println!(
                "bench replay_speedup/{}/{}: naive {:>10.3} ms, indexed {:>9.3} ms, \
                 speedup {:>6.1}x ({} evictions, {} faults)",
                case.label,
                policy,
                naive_time.as_secs_f64() * 1e3,
                indexed_time.as_secs_f64() * 1e3,
                naive_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-12),
                indexed.evictions_issued,
                indexed.fault_count,
            );
        }
    }

    // The Figure-11 end-to-end G10 replays (plan + replay), one per paper
    // model, unchanged from the pre-refactor bench.
    if !smoke {
        let config = SystemConfig::table2();
        let mut group = c.benchmark_group("fig11_replay_g10");
        group.sample_size(10);
        for model in ModelKind::PAPER_MODELS {
            let workload = Workload::new(model, model.eval_batch());
            let experiment = Experiment::new(&workload).config(config);
            group.bench_function(model.name(), |b| {
                b.iter(|| experiment.run().expect("built-in policies resolve"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
