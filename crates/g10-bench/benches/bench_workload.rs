//! Criterion bench: workload build + analysis — the naive per-consumer
//! derivations vs the shared `GraphIndex`, head-to-head on the synthetic
//! deep GPT stress workload and on BERT's Figure-11 cell.
//!
//! "Analyze" reproduces everything one seven-policy experiment cell derives
//! from the dataflow graph before any replay starts (see
//! `g10_bench::workload_pipeline`): the Figure-2 memory curves, the
//! Figure-3/4 inactive periods, one vitality analysis per planning policy,
//! the lifetime and working-set preparation of all seven replay engines,
//! and the max-working-set check.  The naive side re-derives the
//! tensor→use-site adjacency per consumer with the retained reference
//! (`DnnGraph::tensor_use_sites`); the indexed side reads the CSR adjacency
//! built once at `GraphBuilder::finish`.
//!
//! The printed `workload_speedup` lines summarise the build+analyze ratio.
//! Set `G10_BENCH_SMOKE=1` for a reduced stress size (used by the scheduled
//! CI job).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use g10_bench::workload_pipeline::{
    build_workload, indexed_analysis_fingerprint, naive_analysis_fingerprint, WorkloadCase,
};
use g10_dnn::models::ModelKind;
use std::time::Instant;

fn cases(smoke: bool) -> Vec<WorkloadCase> {
    let mut cases = vec![WorkloadCase::stress(if smoke { 2_000 } else { 10_000 })];
    if !smoke {
        cases.push(WorkloadCase::model(
            ModelKind::Bert,
            ModelKind::Bert.eval_batch(),
        ));
    }
    cases
}

fn bench_workload(c: &mut Criterion) {
    let smoke = std::env::var("G10_BENCH_SMOKE").is_ok();
    let cases = cases(smoke);

    let mut group = c.benchmark_group("workload_indexed");
    group.sample_size(if smoke { 3 } else { 10 });
    for case in &cases {
        group.bench_function(&case.label, |b| {
            b.iter(|| {
                let (graph, trace) = build_workload(case);
                black_box(indexed_analysis_fingerprint(&graph, &trace))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("workload_naive");
    group.sample_size(if smoke { 3 } else { 5 });
    for case in &cases {
        group.bench_function(&case.label, |b| {
            b.iter(|| {
                let (graph, trace) = build_workload(case);
                black_box(naive_analysis_fingerprint(&graph, &trace))
            })
        });
    }
    group.finish();

    // One timed head-to-head per case so the ratio is printed directly,
    // with the two derivation families' results pinned equal on the way.
    for case in &cases {
        let (graph, trace) = build_workload(case);
        assert_eq!(
            indexed_analysis_fingerprint(&graph, &trace),
            naive_analysis_fingerprint(&graph, &trace),
            "indexed and naive workload analyses diverged"
        );
        let min_of = |indexed: bool| {
            (0..3)
                .map(|_| {
                    let start = Instant::now();
                    let (graph, trace) = build_workload(case);
                    if indexed {
                        black_box(indexed_analysis_fingerprint(&graph, &trace));
                    } else {
                        black_box(naive_analysis_fingerprint(&graph, &trace));
                    }
                    start.elapsed()
                })
                .min()
                .expect("three timed runs")
        };
        let indexed_time = min_of(true);
        let naive_time = min_of(false);
        println!(
            "bench workload_speedup/{}: naive {:>9.3} ms, indexed {:>8.3} ms, speedup {:>5.1}x \
             ({} kernels, {} tensors)",
            case.label,
            naive_time.as_secs_f64() * 1e3,
            indexed_time.as_secs_f64() * 1e3,
            naive_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-12),
            graph.num_kernels(),
            graph.num_tensors(),
        );
    }
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
