//! Criterion bench: the memory-pressure timeline operations the eviction
//! algorithm performs in its inner loop (benefit scoring and pressure
//! updates).

use criterion::{criterion_group, criterion_main, Criterion};
use g10_core::pressure::MemoryTimeline;
use g10_time::Nanos;

fn bench_pressure(c: &mut Criterion) {
    let kernels = 2048usize;
    let durations = vec![Nanos::from_micros(500); kernels];
    let values: Vec<u64> = (0..kernels)
        .map(|k| ((k % 700) as u64 + 1) * (1 << 20))
        .collect();
    let capacity = 256 << 20;

    let mut group = c.benchmark_group("pressure_timeline");
    group.bench_function("reduction_above_full_range", |b| {
        let timeline = MemoryTimeline::new(&values, &durations);
        b.iter(|| timeline.reduction_above(&[(0, kernels)], 64 << 20, capacity))
    });
    group.bench_function("add_and_max", |b| {
        let mut timeline = MemoryTimeline::new(&values, &durations);
        b.iter(|| {
            timeline.add(&[(100, 1800)], -(32 << 20));
            let max = timeline.max_value();
            timeline.add(&[(100, 1800)], 32 << 20);
            max
        })
    });
    group.bench_function("fits_extra", |b| {
        let timeline = MemoryTimeline::new(&values, &durations);
        b.iter(|| timeline.fits_extra(&[(256, 1024)], 16 << 20, capacity))
    });
    group.finish();
}

criterion_group!(benches, bench_pressure);
criterion_main!(benches);
