//! Criterion bench: the smart tensor migration scheduler (Algorithm 1 +
//! prefetch scheduling) on every Figure-11 workload.
//!
//! The planning happens once per model at compile time in the real system;
//! this bench shows it stays in the sub-second range even for the largest
//! (SENet-154) graph.

use criterion::{criterion_group, criterion_main, Criterion};
use g10_core::config::SystemConfig;
use g10_core::scheduler::{G10Scheduler, SchedulerVariant};
use g10_dnn::models::ModelKind;
use g10_sim::Workload;

fn bench_scheduler(c: &mut Criterion) {
    let config = SystemConfig::table2();
    let mut group = c.benchmark_group("g10_scheduler_plan");
    group.sample_size(10);
    for model in ModelKind::PAPER_MODELS {
        let workload = Workload::new(model, model.eval_batch());
        group.bench_function(model.name(), |b| {
            b.iter(|| {
                G10Scheduler::new(config, SchedulerVariant::Full)
                    .plan(&workload.graph, &workload.trace)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
