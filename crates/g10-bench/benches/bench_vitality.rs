//! Criterion bench: tensor vitality analysis (§4.2) over every paper model.
//!
//! This is the compile-time analysis pass that extracts lifetimes and
//! inactive periods; the paper argues it is "almost free at the compilation
//! stage", which this bench quantifies for our substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use g10_core::vitality::VitalityAnalysis;
use g10_dnn::models::ModelKind;
use g10_sim::Workload;

fn bench_vitality(c: &mut Criterion) {
    let mut group = c.benchmark_group("vitality_analysis");
    group.sample_size(10);
    for model in ModelKind::PAPER_MODELS {
        let workload = Workload::new(model, model.characterization_batch());
        group.bench_function(model.name(), |b| {
            b.iter(|| VitalityAnalysis::analyze(&workload.graph, &workload.trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vitality);
criterion_main!(benches);
