//! Criterion bench: the flash SSD simulator substrate (FTL writes with
//! garbage collection, reads under channel/chip contention).

use criterion::{criterion_group, criterion_main, Criterion};
use g10_ssd::{Ssd, SsdConfig};
use g10_time::Nanos;

fn bench_ssd(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssd_simulator");

    group.bench_function("bulk_write_1k_pages", |b| {
        b.iter(|| {
            let mut ssd = Ssd::new(SsdConfig::small_test());
            ssd.write_bulk(0, 1000, Nanos::ZERO).unwrap()
        })
    });

    group.bench_function("overwrite_with_gc", |b| {
        b.iter(|| {
            let mut ssd = Ssd::new(SsdConfig::small_test());
            let logical = ssd.config().logical_pages();
            let mut now = Nanos::ZERO;
            for i in 0..logical * 2 {
                now = ssd.write(i % (logical / 2), now).unwrap();
            }
            ssd.stats().block_erases
        })
    });

    group.bench_function("read_after_write", |b| {
        let mut ssd = Ssd::new(SsdConfig::small_test());
        let done = ssd.write_bulk(0, 512, Nanos::ZERO).unwrap();
        b.iter(|| ssd.clone().read_bulk(0, 512, done).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_ssd);
criterion_main!(benches);
