//! Criterion bench: migration-planner scaling — naive flat-`Vec` timelines
//! vs the indexed (segment-tree + Fenwick) timelines, on the synthetic
//! deep GPT stress workload (`g10_dnn::models::stress`).
//!
//! The planning pipeline (eviction scheduling + eager prefetch rescheduling)
//! is run end-to-end on both timeline families over identical vitality
//! analyses, so the printed means are directly comparable; the `speedup`
//! lines summarise the ratio.  Set `G10_BENCH_SMOKE=1` to run a reduced
//! size (used by the scheduled CI job to keep planner wall-time visible
//! without paying for the full 10k-kernel naive baseline).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use g10_core::bandwidth::BandwidthTimeline;
use g10_core::config::SystemConfig;
use g10_core::eviction::{schedule_evictions_with, EvictionOptions};
use g10_core::naive::{NaiveBandwidthTimeline, NaiveMemoryTimeline};
use g10_core::prefetch::schedule_prefetches_with;
use g10_core::pressure::{MemoryTimeline, PressureTimeline};
use g10_core::vitality::VitalityAnalysis;
use g10_dnn::cost::GpuCostModel;
use g10_dnn::models::stress::{build, StressGptConfig};
use g10_dnn::trace::KernelTrace;
use g10_sim::parallel_map;
use std::time::Instant;

struct StressCase {
    label: String,
    trace: KernelTrace,
    analysis: VitalityAnalysis,
    config: SystemConfig,
}

fn stress_case(target_kernels: usize) -> StressCase {
    let cfg = StressGptConfig::with_target_kernels(target_kernels);
    let graph = build(8, &cfg);
    let trace = KernelTrace::profile(&graph, &GpuCostModel::a100());
    let analysis = VitalityAnalysis::analyze(&graph, &trace);
    // Half the peak pressure: deep oversubscription, so the planner has a
    // full eviction + prefetch workload at every size.
    let config = SystemConfig::table2().with_gpu_memory(analysis.peak_live_bytes() / 2);
    StressCase {
        label: format!("{}_kernels", graph.num_kernels()),
        trace,
        analysis,
        config,
    }
}

fn plan<P, B>(case: &StressCase) -> usize
where
    P: PressureTimeline,
    B: g10_core::bandwidth::BandwidthReservation,
{
    let mut schedule = schedule_evictions_with::<P, B>(
        &case.analysis,
        &case.trace,
        &case.config,
        EvictionOptions::both(),
    );
    let prefetches = schedule_prefetches_with(
        &case.analysis,
        &case.trace,
        &case.config,
        &schedule.decisions,
        &mut schedule.pressure,
    );
    schedule.decisions.len() + prefetches.len()
}

fn bench_planner(c: &mut Criterion) {
    let smoke = std::env::var("G10_BENCH_SMOKE").is_ok();
    let sizes: &[usize] = if smoke { &[1_000] } else { &[2_000, 10_000] };
    let cases = parallel_map(sizes.to_vec(), |target| stress_case(*target));

    let mut group = c.benchmark_group("planner_indexed");
    group.sample_size(if smoke { 3 } else { 5 });
    for case in &cases {
        group.bench_function(case.label.clone(), |b| {
            b.iter(|| black_box(plan::<MemoryTimeline, BandwidthTimeline>(case)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("planner_naive");
    group.sample_size(if smoke { 3 } else { 2 });
    for case in &cases {
        group.bench_function(case.label.clone(), |b| {
            b.iter(|| black_box(plan::<NaiveMemoryTimeline, NaiveBandwidthTimeline>(case)))
        });
    }
    group.finish();

    // One timed head-to-head run per size so the ratio is printed directly.
    for case in &cases {
        let start = Instant::now();
        let indexed = plan::<MemoryTimeline, BandwidthTimeline>(case);
        let indexed_time = start.elapsed();
        let start = Instant::now();
        let naive = plan::<NaiveMemoryTimeline, NaiveBandwidthTimeline>(case);
        let naive_time = start.elapsed();
        assert_eq!(indexed, naive, "naive and indexed planners diverged");
        println!(
            "bench planner_speedup/{}: naive {:>10.3} ms, indexed {:>9.3} ms, speedup {:>6.1}x \
             ({} decisions)",
            case.label,
            naive_time.as_secs_f64() * 1e3,
            indexed_time.as_secs_f64() * 1e3,
            naive_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-12),
            indexed / 2,
        );
    }
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
