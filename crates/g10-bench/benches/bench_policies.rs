//! Criterion bench: replay cost of every compared design (Ideal, Base UVM,
//! DeepUM+, FlashNeuron, G10 variants) on one representative workload
//! (BERT at its evaluation batch size).

use criterion::{criterion_group, criterion_main, Criterion};
use g10_core::config::SystemConfig;
use g10_dnn::models::ModelKind;
use g10_sim::{Experiment, PolicyKind, Workload};

fn bench_policies(c: &mut Criterion) {
    let config = SystemConfig::table2();
    let workload = Workload::new(ModelKind::Bert, ModelKind::Bert.eval_batch());
    let mut group = c.benchmark_group("policy_replay_bert");
    group.sample_size(10);
    for policy in PolicyKind::ALL {
        let experiment = Experiment::new(&workload).policy(policy).config(config);
        group.bench_function(policy.label(), |b| {
            b.iter(|| experiment.run().expect("built-in policies resolve"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
