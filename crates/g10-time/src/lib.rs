//! Simulation time for the G10 reproduction workspace.
//!
//! All components of the reproduction (workload traces, the SSD simulator,
//! the unified-memory substrate, the scheduler and the replay simulator)
//! share one notion of time: integer nanoseconds since the start of the
//! simulated training iteration.  Using an integer newtype keeps arithmetic
//! exact and ordering total, which matters for the event-driven replay
//! engine and for property tests.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in time or a duration, in nanoseconds.
///
/// `Nanos` is deliberately simple: it is used both as an *instant* (time since
/// the start of the iteration) and as a *duration*.  The replay engine and the
/// scheduler never need the distinction, and a single type keeps the API small.
///
/// # Example
///
/// ```
/// use g10_time::Nanos;
///
/// let a = Nanos::from_micros(20);
/// let b = Nanos::from_micros(25);
/// assert_eq!((a + b).as_micros_f64(), 45.0);
/// assert!(b > a);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant, used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time value from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time value from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time value from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time value from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to the nearest
    /// nanosecond.  Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Nanos(0)
        } else {
            Nanos((s * 1e9).round() as u64)
        }
    }

    /// Creates a time value from fractional microseconds, rounding to the
    /// nearest nanosecond.  Negative inputs saturate to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            Nanos(0)
        } else {
            Nanos((us * 1e3).round() as u64)
        }
    }

    /// Returns the raw number of nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the value in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition; clamps at [`Nanos::MAX`].
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Returns the larger of the two values.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of the two values.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns `true` if this value is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a float scale factor (e.g. noise injection),
    /// rounding to the nearest nanosecond and saturating at zero.
    pub fn scale(self, factor: f64) -> Nanos {
        let scaled = self.0 as f64 * factor;
        if scaled <= 0.0 {
            Nanos(0)
        } else if scaled >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(scaled.round() as u64)
        }
    }

    /// Computes the time it takes to move `bytes` at `bytes_per_sec`.
    ///
    /// Returns zero when the byte count is zero and [`Nanos::MAX`] when the
    /// bandwidth is zero but the byte count is not (an infinitely slow link).
    pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        if bytes_per_sec <= 0.0 {
            return Nanos::MAX;
        }
        Nanos::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

impl From<Nanos> for u64 {
    fn from(n: Nanos) -> Self {
        n.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
        assert_eq!(Nanos::from_micros_f64(1.5), Nanos::from_nanos(1_500));
    }

    #[test]
    fn negative_float_saturates_to_zero() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(-0.1), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!(a + b, Nanos::from_micros(14));
        assert_eq!(a - b, Nanos::from_micros(6));
        assert_eq!(a * 3, Nanos::from_micros(30));
        assert_eq!(a / 2, Nanos::from_micros(5));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn scale_rounds_and_saturates() {
        let a = Nanos::from_nanos(1_000);
        assert_eq!(a.scale(1.5), Nanos::from_nanos(1_500));
        assert_eq!(a.scale(0.0), Nanos::ZERO);
        assert_eq!(a.scale(-2.0), Nanos::ZERO);
        assert_eq!(Nanos::MAX.scale(2.0), Nanos::MAX);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1 GiB at 1 GiB/s takes one second.
        let gib = 1u64 << 30;
        let t = Nanos::transfer_time(gib, gib as f64);
        assert_eq!(t, Nanos::from_secs(1));
        assert_eq!(Nanos::transfer_time(0, 1.0), Nanos::ZERO);
        assert_eq!(Nanos::transfer_time(10, 0.0), Nanos::MAX);
    }

    #[test]
    fn display_picks_a_sensible_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Nanos::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = (1..=4u64).map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(10));
    }
}
