//! Quickstart: plan and replay one training iteration with G10.
//!
//! Builds a small CNN, runs the tensor vitality analyzer and the smart
//! tensor migration scheduler against a deliberately small GPU, prints a
//! window of the instrumented program (the paper's Figure 9) and compares
//! the replayed performance of G10 against the Base UVM and Ideal baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use g10::core::instrument::render_window;
use g10::core::scheduler::{G10Scheduler, SchedulerVariant};
use g10::core::vitality::VitalityAnalysis;
use g10::dnn::cost::GpuCostModel;
use g10::prelude::*;

fn main() -> Result<(), SimError> {
    // A small workload and a small GPU so migrations are actually needed.
    // The GPU roofline is slowed down (as the paper-calibrated workloads
    // are) so kernels are long enough to overlap migrations with.
    let cost_model = GpuCostModel::a100().slowed(32.0);
    let workload = Workload::with_cost_model(ModelKind::TinyCnn, 64, &cost_model);
    let config = SystemConfig::table2().with_gpu_memory(64 << 20);

    println!("workload: {}", workload.graph.summary());

    // 1. Tensor vitality analysis (§4.2).
    let analysis = VitalityAnalysis::analyze(&workload.graph, &workload.trace);
    println!(
        "vitality: {} tensors, {} inactive periods, peak live footprint {:.1} MiB (GPU capacity {:.1} MiB)",
        analysis.lifetimes().len(),
        analysis.periods().len(),
        analysis.peak_live_bytes() as f64 / (1 << 20) as f64,
        config.gpu_memory_bytes as f64 / (1 << 20) as f64,
    );

    // 2. Smart tensor migration scheduling (§4.3-4.4).
    let scheduler = G10Scheduler::new(config, SchedulerVariant::Full);
    let plan = scheduler.plan_with_analysis(&workload.graph, &workload.trace, &analysis);
    println!(
        "plan: {} pre-evictions ({:.1} MiB to SSD, {:.1} MiB to host), {} prefetches, planned peak {:.1} MiB",
        plan.eviction_count(),
        plan.planned_ssd_evict_bytes() as f64 / (1 << 20) as f64,
        plan.planned_host_evict_bytes() as f64 / (1 << 20) as f64,
        plan.prefetch_count(),
        plan.planned_peak_pressure() as f64 / (1 << 20) as f64,
    );

    // 3. The instrumented program of Figure 9 (first few kernels).
    println!("\n--- instrumented program (first 6 kernels) ---");
    print!("{}", render_window(&workload.graph, &plan, 0, 6));

    // 4. Replay under three designs (one parallel session sweep).
    println!("\n--- replay ---");
    let reports = Experiment::new(&workload).config(config).policies([
        PolicyKind::Ideal,
        PolicyKind::BaseUvm,
        PolicyKind::G10Full,
    ])?;
    for report in reports {
        println!("{}", report.summary());
    }
    Ok(())
}
