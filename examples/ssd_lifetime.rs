//! SSD lifetime under continuous DNN training (the paper's §7.7).
//!
//! Runs the Figure-11 workloads under DeepUM+, FlashNeuron and G10, measures
//! how many bytes each design writes to the flash per iteration, and feeds
//! the write rates into the drive-writes-per-day endurance model of the
//! Samsung Z-SSD.  It also exercises the detailed flash simulator to show
//! the garbage-collection write amplification a migration-heavy workload
//! produces on a small device.
//!
//! Run with: `cargo run --release --example ssd_lifetime`

use g10::prelude::*;
use g10::ssd::{EnduranceModel, Ssd, SsdConfig};
use g10::time::Nanos;

fn main() -> Result<(), SimError> {
    let config = SystemConfig::table2();
    let endurance = EnduranceModel::samsung_z_ssd();

    println!("SSD write traffic and projected lifetime (continuous training):\n");
    println!(
        "{:<12} {:<12} {:>16} {:>14} {:>12}",
        "model", "policy", "writes/iter (GB)", "write rate", "lifetime"
    );
    for model in [ModelKind::Bert, ModelKind::InceptionV3, ModelKind::SENet154] {
        let workload = Workload::new(model, model.eval_batch());
        let reports = Experiment::new(&workload).config(config).policies([
            PolicyKind::DeepUmPlus,
            PolicyKind::FlashNeuron,
            PolicyKind::G10Full,
        ])?;
        for report in &reports {
            let writes = report.ssd_write_bytes() as f64;
            let rate = writes / report.total_time.as_secs_f64();
            println!(
                "{:<12} {:<12} {:>16.1} {:>11.2} GB/s {:>9.1} yr",
                model.name(),
                report.policy,
                writes / 1e9,
                rate / 1e9,
                endurance.lifetime_years(rate),
            );
        }
        println!();
    }

    // Detailed flash-level view: hammer a small simulated device with a
    // migration-like overwrite pattern and report write amplification.
    println!("flash-level view (small simulated device, hot/cold overwrite pattern):");
    let mut ssd = Ssd::new(SsdConfig::small_test());
    let logical = ssd.config().logical_pages();
    let mut now = Nanos::ZERO;
    for lpn in 0..logical {
        now = ssd.write(lpn, now).expect("initial fill");
    }
    for _ in 0..4 {
        for lpn in (0..logical).step_by(3) {
            now = ssd.write(lpn, now).expect("overwrite");
        }
    }
    let stats = ssd.stats();
    println!(
        "  host writes: {} pages, GC moves: {} pages, erases: {}, write amplification: {:.2}",
        stats.host_writes,
        stats.gc_page_moves,
        stats.block_erases,
        stats.write_amplification()
    );
    println!(
        "  mean device latency: {:.1} us",
        stats.mean_latency().as_micros_f64()
    );
    Ok(())
}
