//! ResNet-152 training beyond the GPU memory wall.
//!
//! Reproduces one column of the paper's Figure 11: ResNet-152 at batch 1280
//! needs ~24× the 40 GB GPU capacity, and the example compares how much of
//! the ideal (infinite-memory) performance each design recovers, along with
//! the migration traffic each of them generates (Figure 14).
//!
//! Run with: `cargo run --release --example resnet_offload`

use g10::prelude::*;

fn main() -> Result<(), SimError> {
    let model = ModelKind::ResNet152;
    let batch = model.eval_batch();
    let config = SystemConfig::table2();

    println!("building {} at batch {batch}...", model.name());
    let workload = Workload::new(model, batch);
    println!(
        "{} ({:.0}% of GPU memory)\n",
        workload.graph.summary(),
        workload.memory_ratio(&config) * 100.0
    );

    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "policy", "perf", "iter time", "stall", "GPU-SSD", "GPU-Host", "faults"
    );
    let mut ideal_throughput = 0.0;
    let reports = Experiment::new(&workload)
        .config(config)
        .policies(PolicyKind::ALL)?;
    for (policy, report) in PolicyKind::ALL.iter().zip(&reports) {
        if *policy == PolicyKind::Ideal {
            ideal_throughput = report.throughput();
        }
        println!(
            "{:<12} {:>9.1}% {:>11.1}s {:>9.1}% {:>9.1} GB {:>9.1} GB {:>10}",
            report.policy,
            report.normalized_performance() * 100.0,
            report.total_time.as_secs_f64(),
            report.stall_fraction() * 100.0,
            report.traffic.ssd_total() as f64 / 1e9,
            report.traffic.host_total() as f64 / 1e9,
            report.fault_count,
        );
    }
    println!(
        "\nideal throughput: {:.1} {} — G10 recovers most of it with only 40 GB of on-board memory",
        ideal_throughput,
        model.throughput_unit()
    );
    Ok(())
}
