//! Batch-size explorer (the paper's Figure 15 for one model).
//!
//! Sweeps the batch size of a chosen model and reports training throughput
//! under Ideal, Base UVM, DeepUM+, FlashNeuron and G10, showing where each
//! design falls off the ideal curve as the memory demand grows.
//!
//! Run with: `cargo run --release --example batch_size_explorer [model]`
//! where `model` is one of bert, vit, inceptionv3, resnet152, senet154
//! (default: inceptionv3).

use g10::prelude::*;

fn main() -> Result<(), SimError> {
    let model: ModelKind = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap_or(ModelKind::InceptionV3))
        .unwrap_or(ModelKind::InceptionV3);
    let config = SystemConfig::table2();
    let policies = [
        PolicyKind::Ideal,
        PolicyKind::BaseUvm,
        PolicyKind::FlashNeuron,
        PolicyKind::DeepUmPlus,
        PolicyKind::G10Full,
    ];

    println!(
        "{} throughput ({}) vs batch size on a 40 GB GPU\n",
        model.name(),
        model.throughput_unit()
    );
    print!("{:>8}", "batch");
    for p in policies {
        print!("{:>14}", p.label());
    }
    println!("{:>12}", "memory");

    for batch in model.batch_sweep() {
        let workload = Workload::new(model, batch);
        let reports = Experiment::new(&workload)
            .config(config)
            .policies(policies)?;
        print!("{batch:>8}");
        for report in &reports {
            print!("{:>14.2}", report.throughput());
        }
        println!("{:>11.0}%", workload.memory_ratio(&config) * 100.0);
    }

    println!(
        "\nAs the batch grows, the memory demand rises and the heuristic designs fall off the\n\
         ideal curve first; G10 keeps the closest to ideal by planning migrations at compile time."
    );
    Ok(())
}
